//! The dependency graph and serialization-certifier checks
//! (§V-D, Definition 4, Theorem 5 of the paper).
//!
//! Rather than searching the whole graph for cycles (the naive baseline of
//! Fig. 11), Leopard mirrors the *certifier* the DBMS itself runs:
//!
//! * **SSI** (PostgreSQL): a dangerous structure — two consecutive rw
//!   antidependencies whose endpoints were certainly concurrent — must
//!   have been aborted; finding one among committed transactions is a bug.
//!   Cost: O(degree) per edge.
//! * **MVTO** (CockroachDB): no dependency may point from a transaction
//!   that certainly started later to one that started earlier. Cost: O(1)
//!   per edge.
//! * **Acyclic** (generic conflict serializability): an incremental
//!   reachability check on edge insertion, used for OCC-style certifiers
//!   and as ground truth in tests.

use crate::catalog::CertifierRule;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interval::Interval;
use crate::stats::DepKind;
use crate::types::{Timestamp, TxnId};
use serde::{Deserialize, Serialize};

/// One committed transaction in the graph.
#[derive(Debug)]
struct Node {
    /// Snapshot-generation interval (first operation).
    snapshot: Interval,
    /// Commit interval.
    commit: Interval,
    /// Outgoing edges with the kinds that connect the pair.
    out: FxHashMap<TxnId, u8>,
    /// Number of incoming edges (for Definition 4 pruning).
    in_degree: usize,
    /// An incoming rw edge from a certainly-concurrent transaction.
    in_rw_concurrent: Option<TxnId>,
    /// An outgoing rw edge to a certainly-concurrent transaction.
    out_rw_concurrent: Option<TxnId>,
}

const fn kind_bit(kind: DepKind) -> u8 {
    match kind {
        DepKind::Ww => 1,
        DepKind::Wr => 2,
        DepKind::Rw => 4,
    }
}

/// A certifier-rule match: the SC violation to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifierViolation {
    /// Name of the prohibited pattern.
    pub pattern: &'static str,
    /// Transactions forming the pattern, in pattern order.
    pub txns: Vec<TxnId>,
}

/// Plain-data image of one graph node, used by checkpointing. Outgoing
/// edges are flattened to a sorted `(target, kind bits)` vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSnap {
    /// The committed transaction.
    pub id: TxnId,
    /// Snapshot-generation interval.
    pub snapshot: Interval,
    /// Commit interval.
    pub commit: Interval,
    /// Outgoing edges as `(target, kind bits)`, sorted by target.
    pub out: Vec<(TxnId, u8)>,
    /// Incoming edge count.
    pub in_degree: u64,
    /// Incoming concurrent-rw marker (SSI rule state).
    pub in_rw_concurrent: Option<TxnId>,
    /// Outgoing concurrent-rw marker (SSI rule state).
    pub out_rw_concurrent: Option<TxnId>,
}

/// The mirrored dependency graph.
#[derive(Debug, Default)]
pub struct DepGraph {
    nodes: FxHashMap<TxnId, Node>,
    edge_count: usize,
}

impl DepGraph {
    /// Registers a committed transaction.
    pub fn add_node(&mut self, txn: TxnId, snapshot: Interval, commit: Interval) {
        self.nodes.entry(txn).or_insert(Node {
            snapshot,
            commit,
            out: FxHashMap::default(),
            in_degree: 0,
            in_rw_concurrent: None,
            out_rw_concurrent: None,
        });
    }

    /// `true` if `txn` is (still) present.
    #[must_use]
    pub fn contains(&self, txn: TxnId) -> bool {
        self.nodes.contains_key(&txn)
    }

    /// Adds a dependency edge and runs the certifier rule on it.
    ///
    /// Edges whose endpoints have been garbage-collected are ignored:
    /// Theorem 5 guarantees a pruned transaction cannot take part in any
    /// future prohibited pattern. Returns a violation if the new edge
    /// completes one.
    pub fn add_edge(
        &mut self,
        from: TxnId,
        to: TxnId,
        kind: DepKind,
        rule: Option<CertifierRule>,
    ) -> Option<CertifierViolation> {
        if from == to || !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            return None;
        }
        let bit = kind_bit(kind);
        let was_new_pair;
        {
            let from_node = self.nodes.get_mut(&from)?;
            let entry = from_node.out.entry(to).or_insert(0);
            if *entry & bit != 0 {
                return None; // duplicate edge of the same kind
            }
            was_new_pair = *entry == 0;
            *entry |= bit;
        }
        if was_new_pair {
            self.edge_count += 1;
            if let Some(to_node) = self.nodes.get_mut(&to) {
                to_node.in_degree += 1;
            }
        }
        match rule {
            None => None,
            Some(CertifierRule::SsiDangerousStructure) => self.check_ssi(from, to, kind),
            Some(CertifierRule::MvtoTimestampOrder) => self.check_mvto(from, to),
            Some(CertifierRule::AcyclicGraph) => self.check_cycle(from, to),
        }
    }

    /// SSI rule: after adding rw(a→b) between certainly-concurrent
    /// transactions, a pivot with both an incoming and an outgoing
    /// concurrent rw edge is a dangerous structure PostgreSQL must have
    /// aborted (§V-D).
    fn check_ssi(&mut self, from: TxnId, to: TxnId, kind: DepKind) -> Option<CertifierViolation> {
        if kind != DepKind::Rw {
            return None;
        }
        if !self.certainly_concurrent(from, to) {
            return None;
        }
        if let Some(f) = self.nodes.get_mut(&from) {
            f.out_rw_concurrent = Some(to);
        }
        if let Some(t) = self.nodes.get_mut(&to) {
            t.in_rw_concurrent = Some(from);
        }
        // Either endpoint may have become the pivot.
        for pivot in [from, to] {
            let node = &self.nodes[&pivot];
            if let (Some(inn), Some(out)) = (node.in_rw_concurrent, node.out_rw_concurrent) {
                if inn != pivot && out != pivot {
                    return Some(CertifierViolation {
                        pattern: "ssi-dangerous-structure",
                        txns: vec![inn, pivot, out],
                    });
                }
            }
        }
        None
    }

    /// MVTO rule: a dependency from a transaction that certainly started
    /// later to one that started earlier can never be produced by
    /// timestamp ordering.
    fn check_mvto(&self, from: TxnId, to: TxnId) -> Option<CertifierViolation> {
        let f = &self.nodes[&from];
        let t = &self.nodes[&to];
        if t.snapshot.certainly_before(&f.snapshot) {
            Some(CertifierViolation {
                pattern: "mvto-newer-to-older",
                txns: vec![from, to],
            })
        } else {
            None
        }
    }

    /// Generic conflict-serializability: the new edge `from → to` closes a
    /// cycle iff `from` is reachable from `to`.
    fn check_cycle(&self, from: TxnId, to: TxnId) -> Option<CertifierViolation> {
        let mut stack = vec![to];
        let mut seen: FxHashSet<TxnId> = FxHashSet::default();
        let mut parent: FxHashMap<TxnId, TxnId> = FxHashMap::default();
        seen.insert(to);
        while let Some(n) = stack.pop() {
            if n == from {
                // Reconstruct the cycle: from -> to -> ... -> from.
                let mut path = vec![from];
                let mut cur = from;
                while cur != to {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(CertifierViolation {
                    pattern: "dependency-cycle",
                    txns: path,
                });
            }
            if let Some(node) = self.nodes.get(&n) {
                for &next in node.out.keys() {
                    if seen.insert(next) {
                        parent.insert(next, n);
                        stack.push(next);
                    }
                }
            }
        }
        None
    }

    /// `true` when the execution spans of the two transactions certainly
    /// overlapped: each one's snapshot was certainly taken before the
    /// other's commit.
    #[must_use]
    pub fn certainly_concurrent(&self, a: TxnId, b: TxnId) -> bool {
        let (Some(na), Some(nb)) = (self.nodes.get(&a), self.nodes.get(&b)) else {
            return false;
        };
        na.snapshot.certainly_before(&nb.commit) && nb.snapshot.certainly_before(&na.commit)
    }

    /// Garbage-collects transactions per Definition 4: in-degree zero and
    /// terminal timestamp at or before `horizon` (the earliest snapshot
    /// generation timestamp of any unverified trace). Pruning cascades.
    /// Returns the number of nodes removed.
    pub fn prune(&mut self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        loop {
            let garbage: Vec<TxnId> = self
                .nodes
                .iter()
                .filter(|(_, n)| n.in_degree == 0 && n.commit.hi <= horizon)
                .map(|(id, _)| *id)
                .collect();
            if garbage.is_empty() {
                return removed;
            }
            for id in garbage {
                let Some(node) = self.nodes.remove(&id) else {
                    continue;
                };
                self.edge_count -= node.out.len();
                for succ in node.out.keys() {
                    if let Some(s) = self.nodes.get_mut(succ) {
                        s.in_degree -= 1;
                    }
                }
                removed += 1;
            }
        }
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live edges (distinct ordered pairs).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Cheap estimate of the graph's live memory: every node at its
    /// inline size plus map-slot overhead, every edge at the size of its
    /// adjacency entry.
    #[must_use]
    pub fn mem_usage(&self) -> crate::budget::MemUsage {
        crate::budget::MemUsage::per_entry(self.nodes.len(), std::mem::size_of::<Node>() + 48)
            + crate::budget::MemUsage::per_entry(self.edge_count, 24)
    }

    /// Iterates the edges for inspection (tests, baselines).
    pub fn edges(&self) -> impl Iterator<Item = (TxnId, TxnId, u8)> + '_ {
        self.nodes
            .iter()
            .flat_map(|(from, n)| n.out.iter().map(move |(to, kinds)| (*from, *to, *kinds)))
    }

    /// Flattens the graph into plain-data snapshots, sorted by id.
    #[must_use]
    pub fn snapshot(&self) -> Vec<NodeSnap> {
        let mut snaps: Vec<NodeSnap> = self
            .nodes
            .iter()
            .map(|(&id, node)| {
                let mut out: Vec<(TxnId, u8)> =
                    node.out.iter().map(|(&to, &bits)| (to, bits)).collect();
                out.sort_unstable_by_key(|&(to, _)| to);
                NodeSnap {
                    id,
                    snapshot: node.snapshot,
                    commit: node.commit,
                    out,
                    in_degree: node.in_degree as u64,
                    in_rw_concurrent: node.in_rw_concurrent,
                    out_rw_concurrent: node.out_rw_concurrent,
                }
            })
            .collect();
        snaps.sort_unstable_by_key(|s| s.id);
        snaps
    }

    /// Rebuilds a graph from [`NodeSnap`]s produced by
    /// [`DepGraph::snapshot`]. The edge count is recomputed.
    #[must_use]
    pub fn restore(snaps: &[NodeSnap]) -> DepGraph {
        let mut nodes: FxHashMap<TxnId, Node> = FxHashMap::default();
        let mut edge_count = 0;
        for snap in snaps {
            edge_count += snap.out.len();
            nodes.insert(
                snap.id,
                Node {
                    snapshot: snap.snapshot,
                    commit: snap.commit,
                    out: snap.out.iter().copied().collect(),
                    in_degree: snap.in_degree as usize,
                    in_rw_concurrent: snap.in_rw_concurrent,
                    out_rw_concurrent: snap.out_rw_concurrent,
                },
            );
        }
        DepGraph { nodes, edge_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    fn graph3() -> DepGraph {
        let mut g = DepGraph::default();
        // Three certainly-concurrent transactions.
        g.add_node(TxnId(1), iv(0, 1), iv(100, 101));
        g.add_node(TxnId(2), iv(2, 3), iv(102, 103));
        g.add_node(TxnId(3), iv(4, 5), iv(104, 105));
        g
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = graph3();
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, None).is_none());
        g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, None);
        assert_eq!(g.edge_count(), 1);
        // Different kind on the same pair is recorded but not double-counted.
        g.add_edge(TxnId(1), TxnId(2), DepKind::Wr, None);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn cycle_rule_detects_two_cycle() {
        let mut g = graph3();
        assert!(g
            .add_edge(
                TxnId(1),
                TxnId(2),
                DepKind::Ww,
                Some(CertifierRule::AcyclicGraph)
            )
            .is_none());
        let v = g
            .add_edge(
                TxnId(2),
                TxnId(1),
                DepKind::Rw,
                Some(CertifierRule::AcyclicGraph),
            )
            .expect("cycle expected");
        assert_eq!(v.pattern, "dependency-cycle");
        assert!(v.txns.contains(&TxnId(1)) && v.txns.contains(&TxnId(2)));
    }

    #[test]
    fn cycle_rule_detects_three_cycle() {
        let mut g = graph3();
        let rule = Some(CertifierRule::AcyclicGraph);
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, rule).is_none());
        assert!(g.add_edge(TxnId(2), TxnId(3), DepKind::Wr, rule).is_none());
        let v = g.add_edge(TxnId(3), TxnId(1), DepKind::Rw, rule).unwrap();
        assert_eq!(v.txns.len(), 3);
    }

    #[test]
    fn ssi_rule_flags_dangerous_structure() {
        let mut g = graph3();
        let rule = Some(CertifierRule::SsiDangerousStructure);
        // t1 -rw-> t2 -rw-> t3, all certainly concurrent: pivot is t2.
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Rw, rule).is_none());
        let v = g.add_edge(TxnId(2), TxnId(3), DepKind::Rw, rule).unwrap();
        assert_eq!(v.pattern, "ssi-dangerous-structure");
        assert_eq!(v.txns, vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn ssi_rule_ignores_serial_rw_chains() {
        let mut g = DepGraph::default();
        // t2 certainly after t1, t3 certainly after t2: no concurrency.
        g.add_node(TxnId(1), iv(0, 1), iv(2, 3));
        g.add_node(TxnId(2), iv(10, 11), iv(12, 13));
        g.add_node(TxnId(3), iv(20, 21), iv(22, 23));
        let rule = Some(CertifierRule::SsiDangerousStructure);
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Rw, rule).is_none());
        assert!(g.add_edge(TxnId(2), TxnId(3), DepKind::Rw, rule).is_none());
    }

    #[test]
    fn ssi_rule_ignores_ww_wr_edges() {
        let mut g = graph3();
        let rule = Some(CertifierRule::SsiDangerousStructure);
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, rule).is_none());
        assert!(g.add_edge(TxnId(2), TxnId(3), DepKind::Wr, rule).is_none());
    }

    #[test]
    fn mvto_rule_flags_newer_to_older() {
        let mut g = DepGraph::default();
        g.add_node(TxnId(1), iv(0, 1), iv(50, 51));
        g.add_node(TxnId(2), iv(10, 11), iv(52, 53));
        let rule = Some(CertifierRule::MvtoTimestampOrder);
        // old -> new is fine.
        assert!(g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, rule).is_none());
        // new -> old is prohibited.
        let v = g.add_edge(TxnId(2), TxnId(1), DepKind::Rw, rule).unwrap();
        assert_eq!(v.pattern, "mvto-newer-to-older");
    }

    #[test]
    fn mvto_rule_tolerates_uncertain_start_order() {
        let mut g = DepGraph::default();
        g.add_node(TxnId(1), iv(0, 10), iv(50, 51));
        g.add_node(TxnId(2), iv(5, 15), iv(52, 53));
        let rule = Some(CertifierRule::MvtoTimestampOrder);
        assert!(g.add_edge(TxnId(2), TxnId(1), DepKind::Rw, rule).is_none());
    }

    #[test]
    fn prune_respects_definition_4() {
        let mut g = graph3();
        g.add_edge(TxnId(1), TxnId(2), DepKind::Ww, None);
        g.add_edge(TxnId(2), TxnId(3), DepKind::Ww, None);
        // Horizon below t1's commit end: nothing prunable.
        assert_eq!(g.prune(Timestamp(50)), 0);
        // Horizon covers t1 and t2's commits: t1 (in-degree 0) goes first,
        // which drops t2's in-degree to 0, so t2 cascades; t3's commit end
        // (105) is above the horizon and survives.
        assert_eq!(g.prune(Timestamp(104)), 2);
        assert!(g.contains(TxnId(3)));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_to_pruned_nodes_are_ignored() {
        let mut g = graph3();
        g.prune(Timestamp(u64::MAX));
        assert_eq!(g.node_count(), 0);
        assert!(g
            .add_edge(
                TxnId(1),
                TxnId(2),
                DepKind::Ww,
                Some(CertifierRule::AcyclicGraph)
            )
            .is_none());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn certainly_concurrent_requires_span_overlap() {
        let g = graph3();
        assert!(g.certainly_concurrent(TxnId(1), TxnId(2)));
        let mut g2 = DepGraph::default();
        g2.add_node(TxnId(1), iv(0, 1), iv(2, 3));
        g2.add_node(TxnId(2), iv(10, 11), iv(12, 13));
        assert!(!g2.certainly_concurrent(TxnId(1), TxnId(2)));
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = graph3();
        assert!(g
            .add_edge(
                TxnId(1),
                TxnId(1),
                DepKind::Ww,
                Some(CertifierRule::AcyclicGraph)
            )
            .is_none());
        assert_eq!(g.edge_count(), 0);
    }
}
