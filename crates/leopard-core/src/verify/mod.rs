//! Mechanism-mirrored verification (§V, Algorithm 2 of the paper).
//!
//! The [`Verifier`] consumes the trace stream the two-level pipeline
//! dispatches (sorted by `ts_bef`) and mirrors the internal state a DBMS's
//! concurrency control would have built: the ordered version chains, the
//! lock table, and the dependency graph. Each mirrored structure checks
//! its own mechanism — consistent read, mutual exclusion, first updater
//! wins and the serialization certifier — and the dependencies one
//! mechanism deduces feed the others (§V-A last paragraph).
//!
//! Checks that depend on information that may still be in flight are
//! deferred to the precise point where the sorted stream guarantees
//! completeness: a read with snapshot interval `S` is checked once the
//! stream position passes `S.ts_aft`, because any commit trace arriving
//! later starts after `S` and is a *future version* by definition.

mod depgraph;
mod lock_table;
mod shard;
mod txn_table;
mod version_store;

pub use depgraph::{CertifierViolation, DepGraph, NodeSnap};
pub use lock_table::{KeyLocks, LockCheck, LockEntry, LockTable};
pub use shard::ShardedVerifier;
pub use txn_table::{MatchedRead, ReadRunKey, TxnInfo, TxnOutcome, TxnSnap, TxnTable};
pub use version_store::{
    KeyVersions, PruneBreakdown, ReadMatch, RecordVersions, SpillIndexEntry, VersionClass,
    VersionEntry, VersionStore, VersionUid,
};

use crate::budget::{BudgetCounters, MemBudget, MemUsage};
use crate::catalog::{IsolationLevel, MechanismSet, SnapshotLevel};
use crate::checkpoint::{Checkpoint, CheckpointError, PendingReadSnap, CHECKPOINT_VERSION};
use crate::interval::{resolve_exclusive_pair, Interval, PairOrder};
use crate::obs;
use crate::preflight::QuarantineGate;
use crate::report::{BugReport, Violation};
use crate::stats::{DeductionStats, DepKind};
use crate::trace::{OpKind, Trace};
use crate::types::{ClientId, Key, Timestamp, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Verifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifierConfig {
    /// Which mechanisms to verify, and how (from the DBMS profile).
    pub mechanisms: MechanismSet,
    /// Run periodic garbage collection (versions, locks, graph, table).
    pub gc: bool,
    /// GC period in processed traces.
    pub gc_every: u64,
    /// Cross-mechanism dependency transfer (§V-A): rw derivation from
    /// wr+ww. Disabling it is the `abl_dep_transfer` ablation.
    pub dep_transfer: bool,
    /// Use the Theorem-2 minimal candidate version set. Disabling it is
    /// the `abl_candidate_set` ablation (garbage versions stay candidates,
    /// so stale reads go undetected and matches get more ambiguous).
    pub minimal_candidate_set: bool,
    /// Maximum clock-synchronisation error between any two clients, in
    /// nanoseconds (the paper's §IV-A NTP assumption made explicit).
    ///
    /// Every trace interval is widened by this bound on ingestion, so a
    /// timestamp that is off by at most `clock_skew_bound` can never turn
    /// a legal execution into a reported violation — at the cost of more
    /// uncertain (overlapping) dependencies. Zero assumes perfect sync.
    pub clock_skew_bound: u64,
    /// Degraded mode for partially observed histories (crashed clients,
    /// dropped trace deliveries). Ill-formed traces are quarantined rather
    /// than fatal, and consistent-read mismatches explainable by a missing
    /// delivery are demoted to coverage notes instead of violations.
    /// Degraded mode may *miss* true violations but never fabricates one;
    /// the [`Coverage`] section of the outcome records every hole.
    pub degraded: bool,
    /// Memory budget for the mirrored structures
    /// ([`MemBudget::UNLIMITED`] disables governance). When the
    /// estimated usage exceeds the budget, a garbage-collection pass is
    /// forced immediately, off the `gc_every` cadence; the online
    /// governor ([`crate::online`]) escalates further (force-dispatch,
    /// client eviction) when GC alone is not enough.
    pub mem_budget: MemBudget,
}

impl VerifierConfig {
    /// Configuration mirroring PostgreSQL at `level` (the paper's default
    /// subject).
    #[must_use]
    pub fn for_level(level: IsolationLevel) -> VerifierConfig {
        VerifierConfig::for_mechanisms(MechanismSet::postgres(level))
    }

    /// Configuration for an explicit mechanism assembly (from
    /// [`crate::catalog::catalog`] or hand-built).
    #[must_use]
    pub fn for_mechanisms(mechanisms: MechanismSet) -> VerifierConfig {
        VerifierConfig {
            mechanisms,
            gc: true,
            gc_every: 512,
            dep_transfer: true,
            minimal_candidate_set: true,
            clock_skew_bound: 0,
            degraded: false,
            mem_budget: MemBudget::UNLIMITED,
        }
    }
}

/// Live memory footprint of the verifier's mirrored structures, in number
/// of retained entries (the Fig. 10(a)/14(b) memory metric).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Mirrored record versions.
    pub versions: usize,
    /// Mirrored lock entries.
    pub locks: usize,
    /// Dependency-graph nodes.
    pub graph_nodes: usize,
    /// Dependency-graph edges.
    pub graph_edges: usize,
    /// Tracked transactions.
    pub txns: usize,
    /// Deferred read checks.
    pub pending_checks: usize,
}

impl Footprint {
    /// Total retained entries.
    #[must_use]
    pub fn total(&self) -> usize {
        self.versions
            + self.locks
            + self.graph_nodes
            + self.graph_edges
            + self.txns
            + self.pending_checks
    }
}

/// Counters summarising one verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyCounters {
    /// Traces processed.
    pub traces: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Peak footprint observed at GC points.
    pub peak_footprint: usize,
    /// Resource-governor counters: memory high-water marks and what the
    /// overload ladder had to do (forced GC, forced dispatch, shedding,
    /// budget evictions). Part of the checkpoint image, so they survive
    /// resume.
    pub budget: BudgetCounters,
}

/// Maximum number of human-readable notes retained in [`Coverage`];
/// further degradations are still counted, just not itemised.
pub const MAX_COVERAGE_NOTES: usize = 100;

/// How much of the history the verdict actually covers (the `Degraded`
/// section of a chaos run's outcome). A clean report is only as strong as
/// its coverage: every evicted client, quarantined trace, demoted read and
/// indeterminate transaction is a hole the verdict does not speak for.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Coverage {
    /// Clients force-closed by watermark-stall eviction, sorted.
    pub evicted_clients: Vec<ClientId>,
    /// Ill-formed traces routed to quarantine instead of the verifier.
    pub quarantined_traces: u64,
    /// Consistent-read mismatches demoted to notes (explainable by a
    /// missing delivery) instead of reported as violations.
    pub demoted_reads: u64,
    /// Transactions with no terminal trace: their effects are unverified.
    pub indeterminate_txns: Vec<TxnId>,
    /// Human-readable descriptions of the first
    /// [`MAX_COVERAGE_NOTES`] degradations.
    pub notes: Vec<String>,
}

impl Coverage {
    /// `true` when the whole history was verified: no evictions, no
    /// quarantined traces, no demotions, no indeterminate transactions.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.evicted_clients.is_empty()
            && self.quarantined_traces == 0
            && self.demoted_reads == 0
            && self.indeterminate_txns.is_empty()
    }

    fn push_note(&mut self, note: String) {
        if self.notes.len() < MAX_COVERAGE_NOTES {
            self.notes.push(note);
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complete() {
            return writeln!(f, "coverage: complete");
        }
        writeln!(f, "coverage: DEGRADED")?;
        if !self.evicted_clients.is_empty() {
            write!(f, "  evicted clients:")?;
            for c in &self.evicted_clients {
                write!(f, " {c}")?;
            }
            writeln!(f)?;
        }
        if self.quarantined_traces > 0 {
            writeln!(f, "  quarantined traces: {}", self.quarantined_traces)?;
        }
        if self.demoted_reads > 0 {
            writeln!(f, "  demoted reads: {}", self.demoted_reads)?;
        }
        if !self.indeterminate_txns.is_empty() {
            writeln!(f, "  indeterminate txns: {}", self.indeterminate_txns.len())?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Result of a finished verification run.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// All violations found.
    pub report: BugReport,
    /// Dependency-deduction statistics (β accounting).
    pub stats: DeductionStats,
    /// Run counters.
    pub counters: VerifyCounters,
    /// How much of the history the verdict covers.
    pub coverage: Coverage,
    /// Observability snapshot, present only when [`crate::obs`]
    /// recording was enabled for the run. Never feeds back into a
    /// verdict: with recording off this is `None` and the rest of the
    /// outcome is byte-identical (`tests/obs_equivalence.rs`).
    pub obs: Option<crate::obs::ObsSnapshot>,
    /// The first unrecoverable spill-store failure, if one occurred.
    /// When set, the run stopped admitting traces at the fault and the
    /// report/coverage cover only the prefix — callers must surface this
    /// as a typed fatal error, never as a verdict.
    pub store_fault: Option<String>,
}

/// A deferred consistent-read check (due once the stream passes
/// `snapshot.hi`).
///
/// The tie-break after `due` is the check's *birth position* in the
/// stream — (trace sequence, element index) — which is identical to the
/// old insertion-counter order in a single verifier, but stays globally
/// comparable when the heap is partitioned across shards.
#[derive(Debug)]
struct PendingRead {
    due: Timestamp,
    born_seq: u64,
    born_elem: u64,
    reader: TxnId,
    key: Key,
    observed: Value,
    snapshot: Interval,
    read_op: Interval,
}

impl PendingRead {
    fn key(&self) -> (Timestamp, u64, u64) {
        (self.due, self.born_seq, self.born_elem)
    }
}
impl PartialEq for PendingRead {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for PendingRead {}
impl PartialOrd for PendingRead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Identity of one worker within a [`ShardedVerifier`]: shard `shard` of
/// `of`. A verifier with no role (`None`) runs in *direct* mode — the
/// classic single-threaded verifier, applying every effect immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRole {
    /// This shard's index, in `0..of`.
    pub shard: usize,
    /// Total shard count.
    pub of: usize,
}

/// The shard a key routes to: `fxhash(key) % n`.
pub(crate) fn shard_of(key: Key, n: usize) -> usize {
    use std::hash::Hasher as _;
    let mut h = crate::fxhash::FxHasher::default();
    h.write_u64(key.0);
    (h.finish() as usize) % n
}

// Emission phases within one trace's processing, in sequential order:
// pending-read flush, inline per-element / per-lock-key checks, the
// certifier node, matched-read replay, then the per-write-key loop.
const PH_FLUSH: u64 = 1;
const PH_INLINE: u64 = 2;
const PH_NODE: u64 = 3;
const PH_REPLAY: u64 = 4;
const PH_WRITEKEY: u64 = 5;
/// Driver-side quarantine notes. Smaller than every shard phase: a trace
/// quarantined after `k` admissions is keyed `[k, PH_QUAR, ..]`, sorting
/// after everything the k-th admitted trace emitted (seq `k - 1`) and
/// before the next admitted trace's first flush (`[k, PH_FLUSH, ..]`) —
/// exactly where the sequential verifier interleaves the note.
pub(crate) const PH_QUAR: u64 = 0;

/// Global emission key: `[seq, phase, a, b, c, d, e, sub]`, lexicographic.
/// Two properties make the sharded merge deterministic and equivalent to
/// the sequential verifier: every emission site is owned by exactly one
/// shard (keys never collide across shards), and sorting the union of all
/// shards' emissions by this key reconstructs the exact order in which the
/// sequential verifier would have produced them.
pub(crate) type EmitKey = [u64; 8];

/// A state change the sequential verifier would apply to the global
/// (non-per-key) structures: the bug report, the dependency graph and the
/// coverage block. Worker shards buffer these; the driver merges and
/// applies them in emission-key order at every barrier.
#[derive(Debug)]
pub(crate) enum Effect {
    /// Append a violation to the bug report.
    Violation(Violation),
    /// Add a certifier node for a committed transaction (shard 0 only).
    AddNode {
        /// The committed transaction.
        txn: TxnId,
        /// Its snapshot-generation interval.
        snapshot: Interval,
        /// Its commit interval.
        commit: Interval,
    },
    /// Add a dependency edge (the driver runs the certifier rules on it).
    Edge {
        /// Source transaction.
        from: TxnId,
        /// Target transaction.
        to: TxnId,
        /// Dependency kind.
        kind: DepKind,
    },
    /// A consistent-read mismatch demoted to a coverage note.
    Demoted(String),
    /// A trace quarantined by the driver's admission gate (degraded
    /// mode). Produced by the driver itself, never by a shard; it rides
    /// the same merge so coverage notes keep the sequential interleaving.
    Quarantined(String),
}

/// Ambient emission cursor: the current 7-word site prefix plus a
/// monotonically increasing `sub` counter for multiple emissions from the
/// same site. Only maintained when the verifier has a shard role.
#[derive(Debug, Default, Clone, Copy)]
struct EmitCursor {
    prefix: [u64; 7],
    sub: u64,
}

impl EmitCursor {
    fn set(&mut self, prefix: [u64; 7]) {
        self.prefix = prefix;
        self.sub = 0;
    }

    fn next(&mut self) -> EmitKey {
        let p = self.prefix;
        let k = [p[0], p[1], p[2], p[3], p[4], p[5], p[6], self.sub];
        self.sub += 1;
        k
    }
}

/// The mechanism-mirrored verifier.
#[derive(Debug)]
pub struct Verifier {
    cfg: VerifierConfig,
    txns: TxnTable,
    versions: VersionStore,
    locks: LockTable,
    graph: DepGraph,
    report: BugReport,
    stats: DeductionStats,
    pending_reads: BinaryHeap<Reverse<PendingRead>>,
    stream_pos: Timestamp,
    counters: VerifyCounters,
    coverage: Coverage,
    quarantine: QuarantineGate,
    // Scratch buffers reused across traces to avoid per-trace allocation.
    scratch_lock_checks: Vec<(Key, LockCheck)>,
    // Sharded operation (None = direct mode, identical to the classic
    // single-threaded verifier).
    role: Option<ShardRole>,
    cursor: EmitCursor,
    cur_seq: u64,
    emit_buf: Vec<(EmitKey, Effect)>,
    /// First unrecoverable spill-store failure. Once latched the
    /// verifier refuses further work: a spilled chain that cannot be
    /// faulted back in makes any verdict unreliable, and a typed error
    /// beats a silent wrong one.
    store_fault: Option<crate::store::StoreError>,
    /// Cleared after a spill-write failure: the tier stays attached for
    /// reads (already-spilled records must remain reachable) but no
    /// further spill passes run — the counted in-memory fallback.
    spill_writes_enabled: bool,
}

impl Verifier {
    /// Creates a verifier.
    #[must_use]
    pub fn new(cfg: VerifierConfig) -> Verifier {
        Verifier {
            cfg,
            txns: TxnTable::default(),
            versions: VersionStore::default(),
            locks: LockTable::default(),
            graph: DepGraph::default(),
            report: BugReport::default(),
            stats: DeductionStats::default(),
            pending_reads: BinaryHeap::new(),
            stream_pos: Timestamp::ZERO,
            counters: VerifyCounters::default(),
            coverage: Coverage::default(),
            quarantine: QuarantineGate::default(),
            scratch_lock_checks: Vec::new(),
            role: None,
            cursor: EmitCursor::default(),
            cur_seq: 0,
            emit_buf: Vec::new(),
            store_fault: None,
            spill_writes_enabled: true,
        }
    }

    /// Creates a verifier operating as one shard of a [`ShardedVerifier`]:
    /// per-key state is restricted to owned keys and global effects are
    /// buffered for the driver instead of applied.
    pub(crate) fn for_shard(cfg: VerifierConfig, role: ShardRole) -> Verifier {
        let mut v = Verifier::new(cfg);
        v.role = Some(role);
        v
    }

    /// Assigns a shard role to a verifier restored from a per-shard
    /// checkpoint image.
    pub(crate) fn assume_role(&mut self, role: ShardRole) {
        self.role = Some(role);
    }

    /// `true` when this verifier is responsible for `key` (always, in
    /// direct mode).
    #[inline]
    fn owns(&self, key: Key) -> bool {
        match self.role {
            None => true,
            Some(r) => shard_of(key, r.of) == r.shard,
        }
    }

    /// Installs the initial database state: reads may observe these values
    /// before the first traced write commits.
    pub fn preload(&mut self, key: Key, value: Value) {
        if self.owns(key) {
            self.versions.preload(key, value);
        }
    }

    /// Processes one dispatched trace. Traces must arrive in
    /// non-decreasing `ts_bef` order (the pipeline guarantees this).
    pub fn process(&mut self, trace: &Trace) {
        // A latched store fault means some spilled state is unreachable:
        // every verdict from here on would be built on a partial store.
        // Refuse the work; the caller surfaces the typed error.
        if self.store_fault.is_some() {
            return;
        }
        // Residency pre-fault: every record this trace (or the terminal
        // it triggers) will touch must be in memory before dispatch, so
        // the mechanism code below never observes a spilled chain as
        // "no record".
        if self.versions.spill_attached() {
            self.fault_in_for(trace);
            if self.store_fault.is_some() {
                return;
            }
        }
        // Degraded mode: route ill-formed traces (inverted interval,
        // per-client clock regression, post-terminal operation, duplicate
        // mismatched terminal) to quarantine instead of corrupting the
        // mirrored state; verification continues on the rest. In shard
        // mode the driver gates admission before broadcasting, so shards
        // only ever see admitted traces.
        if self.cfg.degraded && self.role.is_none() {
            if let Some(diag) = self.quarantine.admit(trace) {
                self.coverage.quarantined_traces += 1;
                self.coverage.push_note(format!("quarantined: {diag}"));
                obs::ctr(obs::Counter::QuarantinedTraces, 1);
                return;
            }
        }
        // Sequence number of this trace in the admitted stream: the anchor
        // word of every emission key it produces.
        self.cur_seq = self.counters.traces;
        // Clock-skew tolerance: widen the interval so bounded
        // synchronisation error cannot fabricate a "certain" order. Only
        // the interval is adjusted; the operation payload is borrowed.
        let interval = if self.cfg.clock_skew_bound > 0 {
            let eps = self.cfg.clock_skew_bound;
            Interval::new(
                Timestamp(trace.interval.lo.0.saturating_sub(eps)),
                trace.interval.hi.saturating_add(eps),
            )
        } else {
            trace.interval
        };
        self.stream_pos = self.stream_pos.max(interval.lo);
        self.flush_pending_reads(self.stream_pos);
        let me = self.cfg.mechanisms.mutual_exclusion;
        let cr = self.cfg.mechanisms.consistent_read;

        match &trace.op {
            OpKind::Read(set) => {
                self.txns.observe(trace.txn, trace.client, interval);
                for (ei, &(key, value)) in set.iter().enumerate() {
                    self.handle_read_element(trace.txn, interval, key, value, cr, false, ei as u64);
                }
            }
            OpKind::LockedRead(set) => {
                self.txns.observe(trace.txn, trace.client, interval);
                for (ei, &(key, value)) in set.iter().enumerate() {
                    if me {
                        // The lock itself lives on the owning shard, but
                        // every shard records the key in the transaction's
                        // lock set: the commit-time release loop walks the
                        // *global* key list so check indices agree.
                        if self.owns(key) {
                            self.locks.acquire(key, trace.txn, interval);
                        }
                        let info = self.txns.observe(trace.txn, trace.client, interval);
                        if !info.locked_read_keys.contains(&key) {
                            info.locked_read_keys.push(key);
                        }
                    }
                    // A locking read always observes the latest committed
                    // state: statement-level snapshot semantics.
                    self.handle_read_element(trace.txn, interval, key, value, cr, true, ei as u64);
                }
            }
            OpKind::Write(set) => {
                let snapshot = self
                    .txns
                    .observe(trace.txn, trace.client, interval)
                    .first_op;
                for &(key, value) in set {
                    if self.owns(key) {
                        self.versions
                            .install(key, value, trace.txn, interval, snapshot);
                        if me {
                            self.locks.acquire(key, trace.txn, interval);
                        }
                    }
                    let info = self.txns.observe(trace.txn, trace.client, interval);
                    if info.own_writes.insert(key, value).is_none() {
                        info.write_keys.push(key);
                    }
                }
            }
            OpKind::Commit => {
                self.txns.observe(trace.txn, trace.client, interval);
                self.handle_commit(trace.txn, interval);
            }
            OpKind::Abort => {
                self.txns.observe(trace.txn, trace.client, interval);
                self.handle_abort(trace.txn, interval);
            }
        }

        self.counters.traces += 1;
        if self.role.is_none() {
            // Sharded runs count admissions at the driver; a worker's
            // local tally would multiply-count broadcast traces.
            obs::ctr(obs::Counter::OpsIngested, 1);
        }
        if self.role.is_some() {
            // Shard mode: GC and budget enforcement are epoch-coordinated
            // by the driver (a lone shard cannot compute the global GC low
            // watermark, and per-shard budget checks would diverge from the
            // aggregate the governor acts on).
            return;
        }
        if self.cfg.gc && self.counters.traces.is_multiple_of(self.cfg.gc_every) {
            self.collect_garbage();
        }
        // Budget governance, rung 1: all the count accessors behind
        // `mem_usage` are O(1), so re-checking after every trace is cheap.
        // The high-water mark is observed *after* enforcement: it measures
        // the governed steady-state footprint, not the transient spike a
        // forced GC exists to remove.
        let mut usage = self.mem_usage();
        if self.cfg.mem_budget.exceeded_by(usage) {
            self.force_gc();
            usage = self.mem_usage();
        }
        // Rung 1.5: page cold chains to disk before any rung that costs
        // coverage gets a chance to run.
        if self.cfg.mem_budget.exceeded_by(usage) && self.can_spill() {
            self.spill_pass();
            usage = self.mem_usage();
        }
        self.counters.budget.observe(usage);
    }

    /// Forces a garbage-collection pass immediately, off the periodic
    /// `gc_every` cadence — rung 1 of the overload ladder.
    pub fn force_gc(&mut self) {
        self.counters.budget.forced_gcs += 1;
        obs::ctr(obs::Counter::ForcedGcs, 1);
        self.collect_garbage();
    }

    /// `true` when a spill tier is attached and still accepting writes.
    #[must_use]
    pub fn can_spill(&self) -> bool {
        self.spill_writes_enabled && self.versions.spill_attached() && self.store_fault.is_none()
    }

    /// `true` when a spill tier is attached (regardless of write state).
    #[must_use]
    pub fn spill_attached(&self) -> bool {
        self.versions.spill_attached()
    }

    /// Appends a degraded-load warning to coverage — e.g. a checkpoint
    /// generation fallback surfaced by an embedding layer at resume.
    pub fn note_degraded_load(&mut self, note: &str) {
        self.coverage.push_note(note.to_string());
    }

    /// Runs one spill pass — rung 1.5 of the overload ladder, between
    /// forced GC and forced dispatch: cold fully-committed version
    /// chains page out to the spill tier until estimated usage drops to
    /// 3/4 of the byte budget. Write failures are *never* fatal: the
    /// records stay resident, the pass is abandoned, further passes are
    /// disabled, and the fallback is counted — the ladder then proceeds
    /// exactly as it would without a spill tier.
    pub fn spill_pass(&mut self) {
        let target = self.spill_target_bytes();
        let t0 = obs::span_start();
        match self.versions.spill_cold(target) {
            Ok(n) => {
                self.counters.budget.spill_passes += 1;
                self.counters.budget.spilled_records += n as u64;
            }
            Err(e) => {
                self.counters.budget.spill_fallbacks += 1;
                self.spill_writes_enabled = false;
                self.coverage.push_note(format!(
                    "spill disabled after write failure (records stay in memory): {e}"
                ));
            }
        }
        if t0.is_some() {
            let lane = match self.role {
                None => obs::LANE_DRIVER,
                Some(r) => obs::shard_lane(r.shard),
            };
            let dur = obs::span_end(obs::Stage::Spill, lane, t0);
            obs::hist(obs::HistId::SpillPassUs, dur);
        }
        if let Some(tier) = self.versions.spill_tier() {
            obs::gauge_set(obs::Gauge::SpillBytes, tier.stats().bytes_on_disk);
        }
    }

    /// The byte level a spill pass drains to: 3/4 of the byte budget,
    /// leaving headroom so the very next trace does not re-trigger the
    /// ladder. With no byte cap configured the pass is a no-op (entry
    /// caps alone cannot be relieved by spilling page-cache-sized
    /// amounts, and the ladder's other rungs handle them as before).
    fn spill_target_bytes(&self) -> u64 {
        let cap = self.cfg.mem_budget.max_bytes;
        if cap == 0 {
            u64::MAX
        } else {
            cap / 4 * 3
        }
    }

    /// Faults in every record `trace` will touch. Read/write sets name
    /// their keys directly; terminals touch the transaction's write keys
    /// and the keys of its matched reads (replayed at commit).
    fn fault_in_for(&mut self, trace: &Trace) {
        match &trace.op {
            OpKind::Read(set) | OpKind::LockedRead(set) | OpKind::Write(set) => {
                for i in 0..set.len() {
                    let key = set[i].0;
                    if self.owns(key) && !self.fault_in(key) {
                        return;
                    }
                }
            }
            OpKind::Commit | OpKind::Abort => {
                let Some(info) = self.txns.get(trace.txn) else {
                    return;
                };
                let mut keys: Vec<Key> = info
                    .write_keys
                    .iter()
                    .chain(info.matched_reads.iter().map(|m| &m.key))
                    .copied()
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                for key in keys {
                    if self.owns(key) && !self.fault_in(key) {
                        return;
                    }
                }
            }
        }
    }

    /// Faults one record back in, latching the store fault on an
    /// unrecoverable error. Returns `false` when latched.
    fn fault_in(&mut self, key: Key) -> bool {
        match self.versions.ensure_resident(key) {
            Ok(faulted) => {
                if faulted {
                    self.counters.budget.spill_faults += 1;
                }
                true
            }
            Err(e) => {
                self.coverage
                    .push_note(format!("spill store fault on {key:?}: {e}"));
                self.store_fault = Some(e);
                false
            }
        }
    }

    /// The first unrecoverable spill-store failure, if one occurred.
    /// While set, [`Verifier::process`] refuses traces — the caller must
    /// surface this as a typed fatal error, never report a verdict.
    #[must_use]
    pub fn store_fault(&self) -> Option<&crate::store::StoreError> {
        self.store_fault.as_ref()
    }

    /// Records that a spill tier could not be attached — a clean counted
    /// fallback to the in-memory path. Rung 1.5 stays disarmed; the
    /// ladder's other rungs govern exactly as before.
    pub fn note_spill_unavailable(&mut self, why: &str) {
        self.counters.budget.spill_fallbacks += 1;
        obs::ctr(obs::Counter::SpillFallbacks, 1);
        self.coverage
            .push_note(format!("spill unavailable (records stay in memory): {why}"));
    }

    /// Attaches a spill tier (rung 1.5 of the overload ladder) to the
    /// version store. Call before feeding traces.
    pub fn attach_spill(&mut self, tier: crate::store::SpillTier) {
        self.versions.attach_spill(tier);
    }

    /// Resume path: re-attaches the spill tier and adopts the
    /// checkpoint's spill index, clearing the spilled-state-unavailable
    /// latch set by [`Verifier::from_checkpoint`].
    pub fn resume_spill(&mut self, tier: crate::store::SpillTier, index: &[SpillIndexEntry]) {
        self.versions.adopt_spill(tier, index);
        if matches!(
            self.store_fault,
            Some(crate::store::StoreError::Unavailable(_))
        ) {
            self.store_fault = None;
        }
    }

    /// Durably syncs the spill tier (no-op without one). Called before a
    /// checkpoint is written so the image never references unsynced
    /// pages.
    pub fn sync_spill(&self) -> crate::store::StoreResult<()> {
        match self.versions.spill_tier() {
            Some(tier) => tier.sync(),
            None => Ok(()),
        }
    }

    /// Spill-tier activity counters (zeroes without a tier).
    #[must_use]
    pub fn spill_stats(&self) -> crate::store::SpillStats {
        self.versions
            .spill_tier()
            .map(crate::store::SpillTier::stats)
            .unwrap_or_default()
    }

    /// Folds an externally measured usage sample (e.g. verifier plus
    /// pipeline, from the online governor) into the budget high-water
    /// marks carried by the checkpointable counters.
    pub fn observe_usage(&mut self, usage: MemUsage) {
        self.counters.budget.observe(usage);
    }

    /// Cheap estimate of the verifier's live memory across the four
    /// mirrored mechanism structures and the deferred read checks.
    #[must_use]
    pub fn mem_usage(&self) -> MemUsage {
        self.versions.mem_usage()
            + self.locks.mem_usage()
            + self.graph.mem_usage()
            + self.txns.mem_usage()
            + MemUsage::per_entry(self.pending_reads.len(), 96)
    }

    /// Flushes every remaining deferred check and returns the outcome.
    #[must_use]
    pub fn finish(mut self) -> VerifyOutcome {
        self.cur_seq = u64::MAX;
        self.flush_pending_reads(Timestamp::MAX);
        self.counters.peak_footprint = self.counters.peak_footprint.max(self.footprint().total());
        let mut coverage = self.coverage;
        let indeterminate = self.txns.active_txns();
        for &txn in &indeterminate {
            coverage.push_note(format!("indeterminate: {txn} has no terminal trace"));
        }
        coverage.indeterminate_txns = indeterminate;
        VerifyOutcome {
            report: self.report,
            stats: self.stats,
            counters: self.counters,
            coverage,
            obs: obs::snapshot_if_enabled(),
            store_fault: self.store_fault.as_ref().map(ToString::to_string),
        }
    }

    /// Records that `client` was force-evicted by the pipeline (its
    /// in-flight transaction, if any, will surface as indeterminate).
    pub fn note_evicted_client(&mut self, client: ClientId) {
        if !self.coverage.evicted_clients.contains(&client) {
            self.coverage.evicted_clients.push(client);
            self.coverage.evicted_clients.sort_unstable();
            self.coverage
                .push_note(format!("evicted: {client} force-closed by stall timeout"));
            obs::ctr(obs::Counter::StallEvictions, 1);
        }
    }

    /// Records that `client` was evicted by rung 3 of the overload
    /// ladder: the memory budget was still exceeded after forced GC and
    /// forced dispatch, so the laggiest client was sacrificed. The hole
    /// is counted separately from stall-timeout evictions.
    pub fn note_budget_eviction(&mut self, client: ClientId) {
        self.counters.budget.budget_evictions += 1;
        obs::ctr(obs::Counter::BudgetEvictions, 1);
        if !self.coverage.evicted_clients.contains(&client) {
            self.coverage.evicted_clients.push(client);
            self.coverage.evicted_clients.sort_unstable();
            self.coverage.push_note(format!(
                "evicted: {client} force-closed under memory pressure"
            ));
        }
    }

    /// Folds `n` newly shed traces (lossy backpressure, post-shutdown
    /// records, forced-dispatch stragglers) into the budget counters so
    /// they survive checkpoint/resume.
    pub fn note_shed_traces(&mut self, n: u64) {
        if n > 0 {
            self.counters.budget.shed_traces += n;
            self.coverage
                .push_note(format!("shed: {n} traces dropped under backpressure"));
        }
    }

    /// Counts a pipeline force-dispatch (rung 2) in the budget counters.
    pub fn note_forced_dispatch(&mut self) {
        self.counters.budget.forced_dispatches += 1;
    }

    /// The coverage accumulated so far (finalised, with indeterminate
    /// transactions, only by [`Verifier::finish`]).
    #[must_use]
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Images the complete verifier state as a [`Checkpoint`].
    ///
    /// The image is byte-stable: two identical verifier states produce
    /// identical checkpoints (all maps are flattened in sorted order).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        let mut pending: Vec<PendingReadSnap> = self
            .pending_reads
            .iter()
            .map(|Reverse(p)| PendingReadSnap {
                due: p.due,
                born_seq: p.born_seq,
                born_elem: p.born_elem,
                reader: p.reader,
                key: p.key,
                observed: p.observed,
                snapshot: p.snapshot,
                read_op: p.read_op,
            })
            .collect();
        pending.sort_unstable_by_key(|p| (p.due, p.born_seq, p.born_elem));
        let (quarantine_seq, quarantine_clients, quarantine_terminals) = self.quarantine.snapshot();
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config: self.cfg,
            stream_pos: self.stream_pos,
            next_uid: self.versions.next_uid(),
            traces_ingested: self.counters.traces,
            txns: self.txns.snapshot(),
            versions: self.versions.snapshot(),
            locks: self.locks.snapshot(),
            graph: self.graph.snapshot(),
            pending_reads: pending,
            quarantine_seq,
            quarantine_clients,
            quarantine_terminals,
            counters: self.counters,
            stats: self.stats,
            report: self.report.clone(),
            coverage: self.coverage.clone(),
            spill: self.versions.spill_index(),
        }
    }

    /// Rebuilds a verifier from a [`Checkpoint`]. Do **not** re-preload
    /// initial state: the preloaded versions are part of the image. Feed
    /// the capture's traces starting at index
    /// [`Checkpoint::traces_ingested`] and the run continues to the same
    /// verdict as an uninterrupted one.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Verifier, CheckpointError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let mut pending_reads = BinaryHeap::with_capacity(ckpt.pending_reads.len());
        for p in &ckpt.pending_reads {
            pending_reads.push(Reverse(PendingRead {
                due: p.due,
                born_seq: p.born_seq,
                born_elem: p.born_elem,
                reader: p.reader,
                key: p.key,
                observed: p.observed,
                snapshot: p.snapshot,
                read_op: p.read_op,
            }));
        }
        Ok(Verifier {
            cfg: ckpt.config,
            txns: TxnTable::restore(&ckpt.txns),
            versions: VersionStore::restore(&ckpt.versions, ckpt.next_uid),
            locks: LockTable::restore(&ckpt.locks),
            graph: DepGraph::restore(&ckpt.graph),
            report: ckpt.report.clone(),
            stats: ckpt.stats,
            pending_reads,
            stream_pos: ckpt.stream_pos,
            counters: ckpt.counters,
            coverage: ckpt.coverage.clone(),
            quarantine: QuarantineGate::restore(
                ckpt.quarantine_seq,
                &ckpt.quarantine_clients,
                &ckpt.quarantine_terminals,
            ),
            scratch_lock_checks: Vec::new(),
            role: None,
            cursor: EmitCursor::default(),
            cur_seq: 0,
            emit_buf: Vec::new(),
            // A checkpoint referencing spilled records cannot verify
            // without its spill directory: latch the typed error now;
            // [`Verifier::resume_spill`] clears it.
            store_fault: (!ckpt.spill.is_empty()).then(|| {
                crate::store::StoreError::Unavailable(format!(
                    "checkpoint references {} spilled records; reattach the spill \
                     directory (resume_spill) before verifying",
                    ckpt.spill.len()
                ))
            }),
            spill_writes_enabled: true,
        })
    }

    /// The violations found so far.
    #[must_use]
    pub fn report(&self) -> &BugReport {
        &self.report
    }

    /// Dependency-deduction statistics so far.
    #[must_use]
    pub fn stats(&self) -> &DeductionStats {
        &self.stats
    }

    /// Current memory footprint of the mirrored structures.
    #[must_use]
    pub fn footprint(&self) -> Footprint {
        Footprint {
            versions: self.versions.version_count(),
            locks: self.locks.lock_count(),
            graph_nodes: self.graph.node_count(),
            graph_edges: self.graph.edge_count(),
            txns: self.txns.len(),
            pending_checks: self.pending_reads.len(),
        }
    }

    /// Run counters so far.
    #[must_use]
    pub fn counters(&self) -> VerifyCounters {
        self.counters
    }

    /// Read access to the mirrored dependency graph (tests, baselines).
    #[must_use]
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// Read access to the mirrored version store (tests, diagnostics).
    #[must_use]
    pub fn versions(&self) -> &VersionStore {
        &self.versions
    }

    // ----- shard emission plumbing ----------------------------------------

    /// Positions the emission cursor at a new site (no-op in direct mode).
    #[inline]
    fn set_cursor(&mut self, prefix: [u64; 7]) {
        if self.role.is_some() {
            self.cursor.set(prefix);
        }
    }

    /// The match-time run key for a [`MatchedRead`]: the first five cursor
    /// words, which globally order read-check executions across shards.
    fn run_key(&self) -> ReadRunKey {
        match self.role {
            None => ReadRunKey::default(),
            Some(_) => {
                let p = self.cursor.prefix;
                ReadRunKey {
                    seq: p[0],
                    phase: p[1],
                    a: p[2],
                    b: p[3],
                    c: p[4],
                }
            }
        }
    }

    /// Appends a violation (direct) or buffers it for the driver (shard).
    fn emit_violation(&mut self, v: Violation) {
        match self.role {
            None => self.report.violations.push(v),
            Some(_) => {
                let k = self.cursor.next();
                self.emit_buf.push((k, Effect::Violation(v)));
            }
        }
    }

    /// Counts and notes a demoted read (direct) or buffers it (shard);
    /// the driver applies the note cap so shards emit uncapped.
    fn emit_demoted(&mut self, note: String) {
        match self.role {
            None => {
                self.coverage.demoted_reads += 1;
                self.coverage.push_note(note);
                obs::ctr(obs::Counter::DemotedReads, 1);
            }
            Some(_) => {
                let k = self.cursor.next();
                self.emit_buf.push((k, Effect::Demoted(note)));
            }
        }
    }

    /// Drains the buffered effects (shard mode), naturally sorted: within
    /// one shard, emission keys are produced in increasing order.
    pub(crate) fn take_emissions(&mut self) -> Vec<(EmitKey, Effect)> {
        std::mem::take(&mut self.emit_buf)
    }

    /// Minimum snapshot `ts_bef` among this shard's deferred read checks.
    pub(crate) fn pending_low(&self) -> Option<Timestamp> {
        self.pending_reads
            .iter()
            .map(|Reverse(p)| p.snapshot.lo)
            .min()
    }

    /// The earliest active snapshot (GC low-watermark input).
    pub(crate) fn earliest_active(&self) -> Option<Timestamp> {
        self.txns.earliest_active_snapshot()
    }

    /// Current stream position (max widened `ts_bef` seen).
    pub(crate) fn stream_pos(&self) -> Timestamp {
        self.stream_pos
    }

    /// Driver-coordinated GC with a globally computed low watermark; the
    /// shard-local graph is empty, so only the per-key structures and the
    /// transaction table are pruned.
    pub(crate) fn shard_gc(&mut self, low: Timestamp) {
        self.versions.prune(low);
        self.locks.prune(low);
        self.txns.prune(low);
    }

    /// Finish-time flush for a worker shard: runs every remaining deferred
    /// check, emitting under the terminal sequence number so finish
    /// emissions sort after every trace's.
    pub(crate) fn shard_finish_flush(&mut self) {
        self.cur_seq = u64::MAX;
        self.flush_pending_reads(Timestamp::MAX);
    }

    /// Transactions with no terminal trace, sorted (identical across
    /// shards: every shard tracks the full transaction table).
    pub(crate) fn active_txns(&self) -> Vec<TxnId> {
        self.txns.active_txns()
    }

    // ----- consistent read ------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_read_element(
        &mut self,
        txn: TxnId,
        op_interval: Interval,
        key: Key,
        observed: Value,
        cr: Option<SnapshotLevel>,
        force_statement: bool,
        elem: u64,
    ) {
        if !self.owns(key) {
            return;
        }
        let Some(level) = cr else { return };
        self.set_cursor([self.cur_seq, PH_INLINE, elem, 0, 0, 0, 0]);
        let Some(info) = self.txns.get(txn) else {
            return;
        };

        // Case 1 (§V-A): the operation sees changes made by earlier
        // operations within the same transaction.
        if let Some(&own) = info.own_writes.get(&key) {
            if own != observed {
                if self.cfg.degraded {
                    // A dropped write delivery of the same transaction can
                    // make the last *observed* own-write stale: demote.
                    self.emit_demoted(format!(
                        "demoted: {txn} read {observed} of {key} over own write {own} \
                         (possible missing write delivery)"
                    ));
                } else {
                    self.emit_violation(Violation::ConsistentRead {
                        reader: txn,
                        key,
                        observed,
                        snapshot: op_interval,
                        candidates: vec![own],
                    });
                }
            }
            return;
        }

        let snapshot = match (level, force_statement) {
            (SnapshotLevel::Transaction, false) => info.first_op,
            _ => op_interval,
        };
        // Defer until the stream position passes the snapshot's after
        // timestamp: beyond that point every commit that could possibly
        // overlap the snapshot interval has been dispatched.
        let check = PendingRead {
            due: snapshot.hi,
            born_seq: self.cur_seq,
            born_elem: elem,
            reader: txn,
            key,
            observed,
            snapshot,
            read_op: op_interval,
        };
        if check.due <= self.stream_pos {
            self.run_read_check(&check);
        } else {
            self.pending_reads.push(Reverse(check));
        }
    }

    fn flush_pending_reads(&mut self, up_to: Timestamp) {
        while self
            .pending_reads
            .peek()
            .is_some_and(|Reverse(front)| front.due <= up_to)
        {
            if let Some(Reverse(check)) = self.pending_reads.pop() {
                // The record may have been spilled since the check was
                // deferred; fault it in, and on a latched store fault put
                // the check back (the typed error supersedes any verdict,
                // but state must stay consistent for diagnostics).
                if self.versions.spill_attached() && !self.fault_in(check.key) {
                    self.pending_reads.push(Reverse(check));
                    return;
                }
                self.set_cursor([
                    self.cur_seq,
                    PH_FLUSH,
                    check.due.0,
                    check.born_seq,
                    check.born_elem,
                    0,
                    0,
                ]);
                self.run_read_check(&check);
            }
        }
    }

    fn run_read_check(&mut self, check: &PendingRead) {
        match self.versions.check_read(
            check.key,
            check.observed,
            &check.snapshot,
            self.cfg.minimal_candidate_set,
        ) {
            ReadMatch::OwnWrite => {}
            ReadMatch::Unique {
                writer,
                uid,
                interval_certain,
            } => {
                if interval_certain {
                    self.stats.wr.certain += 1;
                } else {
                    self.stats.wr.deduced += 1;
                }
                let run_key = self.run_key();
                if let Some(info) = self.txns.get_mut(check.reader) {
                    let matched = MatchedRead {
                        key: check.key,
                        uid,
                        writer,
                        read_op: check.read_op,
                        interval_certain,
                        run_key,
                    };
                    match info.outcome {
                        // Reader still running: buffer until its commit.
                        None => info.matched_reads.push(matched),
                        // Commit already processed (possible only with
                        // degenerate zero-width intervals): emit directly.
                        Some(TxnOutcome::Committed(_)) => {
                            self.emit_matched_read(check.reader, &matched)
                        }
                        Some(TxnOutcome::Aborted(_)) => {}
                    }
                }
            }
            ReadMatch::Ambiguous { .. } => {
                self.stats.wr.uncertain += 1;
            }
            ReadMatch::Violation { candidates } => {
                // Degraded mode: every unmatched read is demoted to a
                // coverage note. This is deliberate and total — with the
                // stream known to be incomplete, *no* consistent-read
                // mismatch is trustworthy evidence of a DBMS bug:
                //
                // * observed value absent from the version store → its
                //   write delivery may simply have been dropped (a
                //   fabricated value is indistinguishable from a dropped
                //   write);
                // * observed value present but pending → the writer's
                //   commit delivery may have been dropped;
                // * observed value committed but outside the candidate
                //   window → dropped deliveries cannot move commit
                //   intervals, but a dropped intermediate write splices
                //   the overwrite chain, which shrinks the candidate set
                //   until a genuinely current read looks stale.
                //
                // Zero false positives under chaos therefore costs the
                // consistent-read check its entire degraded-mode power;
                // each demotion is counted and noted so an operator can
                // re-verify an intact capture of the same run. Mutual
                // exclusion, first-updater-wins and the serialization
                // certifier keep full power — their evidence is commit
                // intervals, which mangling cannot move.
                if self.cfg.degraded {
                    self.emit_demoted(format!(
                        "demoted: {} read {} of {} matched no candidate \
                         (explainable by a missing delivery)",
                        check.reader, check.observed, check.key
                    ));
                    return;
                }
                self.emit_violation(Violation::ConsistentRead {
                    reader: check.reader,
                    key: check.key,
                    observed: check.observed,
                    snapshot: check.snapshot,
                    candidates,
                });
            }
        }
    }

    /// Installs the wr edge and (with dependency transfer on) derives the
    /// rw edge to the already-committed direct successor, for a committed
    /// reader.
    fn emit_matched_read(&mut self, reader: TxnId, m: &MatchedRead) {
        self.versions.add_reader(m.key, m.uid, reader, m.read_op);
        if m.writer != TxnId::INITIAL {
            self.add_dep(m.writer, reader, DepKind::Wr);
        }
        if self.cfg.dep_transfer {
            if let Some(succ) = self.versions.committed_successor(m.key, m.uid) {
                let succ_txn = succ.txn;
                let certain = m.read_op.certainly_before(&succ.install);
                if certain {
                    self.stats.rw.certain += 1;
                } else {
                    self.stats.rw.deduced += 1;
                }
                self.add_dep(reader, succ_txn, DepKind::Rw);
            }
        }
    }

    // ----- commit / abort ---------------------------------------------------

    fn handle_commit(&mut self, txn: TxnId, commit: Interval) {
        let Some(info) = self.txns.get_mut(txn) else {
            return;
        };
        if info.outcome.is_some() {
            return; // duplicate terminal trace: ignore
        }
        info.outcome = Some(TxnOutcome::Committed(commit));
        let snapshot = info.first_op;
        let write_keys = info.write_keys.clone();
        let locked_read_keys = info.locked_read_keys.clone();
        let matched_reads = std::mem::take(&mut info.matched_reads);
        self.counters.committed += 1;

        // Mutual exclusion: release all locks, checking pairs (§V-B). The
        // per-key release walks the transaction's global key list so a
        // shard (which holds only its owned keys' locks) emits checks
        // under the same key index as the sequential verifier would.
        if self.cfg.mechanisms.mutual_exclusion {
            let mut checks = std::mem::take(&mut self.scratch_lock_checks);
            let mut all_keys = write_keys.clone();
            all_keys.extend_from_slice(&locked_read_keys);
            for (ki, &key) in all_keys.iter().enumerate() {
                if !self.owns(key) {
                    continue;
                }
                self.set_cursor([self.cur_seq, PH_INLINE, ki as u64, 0, 0, 0, 0]);
                checks.clear();
                self.locks.release_one(txn, key, commit, &mut checks);
                for (key, check) in checks.drain(..) {
                    if let LockCheck::Violation { own_acquire, other } = check {
                        self.emit_violation(Violation::MutualExclusion {
                            key,
                            first: (txn, own_acquire, commit),
                            second: other,
                        });
                    }
                    // Orders are re-derived during version adjacency below;
                    // nothing else to do here.
                }
            }
            self.scratch_lock_checks = checks;
        }

        // Install versions: they become visible within the commit interval.
        for &key in &write_keys {
            if self.owns(key) {
                self.versions
                    .commit(txn, std::slice::from_ref(&key), commit);
            }
        }

        // Serialization certifier: node plus the dependencies this commit
        // completes. In shard mode the node is emitted by shard 0 alone
        // (every shard sees every commit; one announcement suffices).
        self.set_cursor([self.cur_seq, PH_NODE, 0, 0, 0, 0, 0]);
        match self.role {
            None => self.graph.add_node(txn, snapshot, commit),
            Some(r) => {
                if r.shard == 0 {
                    let k = self.cursor.next();
                    self.emit_buf.push((
                        k,
                        Effect::AddNode {
                            txn,
                            snapshot,
                            commit,
                        },
                    ));
                }
            }
        }

        // wr edges (and derived rw edges) from this transaction's reads,
        // replayed in match order (the run key reconstructs that order
        // across shards).
        for m in &matched_reads {
            let rk = m.run_key;
            self.set_cursor([self.cur_seq, PH_REPLAY, rk.seq, rk.phase, rk.a, rk.b, rk.c]);
            self.emit_matched_read(txn, m);
        }

        // FUW + ww adjacency per written key.
        for (ki, &key) in write_keys.iter().enumerate() {
            if !self.owns(key) {
                continue;
            }
            if self.cfg.mechanisms.first_updater_wins {
                self.set_cursor([self.cur_seq, PH_WRITEKEY, ki as u64, 0, 0, 0, 0]);
                self.check_fuw(txn, key, snapshot, commit);
            }
            self.settle_version_order(txn, key);
            self.set_cursor([self.cur_seq, PH_WRITEKEY, ki as u64, 1, 0, 0, 0]);
            self.link_version_adjacency(txn, key);
        }
    }

    /// Moves `txn`'s freshly committed version to its mechanism-resolved
    /// position in `key`'s chain.
    ///
    /// The chain is kept in install-interval order, but for overlapping
    /// installs that order is only a guess; when ME (lock spans) or FUW
    /// (snapshot-commit spans) proves the opposite order for an adjacent
    /// pair, the entries are swapped. Without this, rw antidependencies
    /// derived from "readers of the predecessor" could point backwards in
    /// time and fabricate certifier violations.
    fn settle_version_order(&mut self, txn: TxnId, key: Key) {
        let me_spans = self.cfg.mechanisms.mutual_exclusion;
        let fuw_spans = self.cfg.mechanisms.first_updater_wins;
        if !me_spans && !fuw_spans {
            return; // no mechanism resolves overlapping orders
        }
        loop {
            let Some((pred, me_entry, succ)) = self.versions.committed_neighbors(key, txn) else {
                return;
            };
            let my_uid = me_entry.uid;
            let my_install = me_entry.install;
            let my_snapshot = me_entry.writer_snapshot;
            let Some(my_commit) = me_entry.visibility else {
                return;
            };
            // An uncommitted neighbour resolves no order (`None`): no swap.
            let resolve_with = |other: &VersionEntry| {
                let other_commit = other.visibility?;
                Some(if me_spans {
                    resolve_exclusive_pair(&my_install, &my_commit, &other.install, &other_commit)
                } else {
                    resolve_exclusive_pair(
                        &my_snapshot,
                        &my_commit,
                        &other.writer_snapshot,
                        &other_commit,
                    )
                })
            };
            // Does the resolved order contradict the chain order?
            let mut swap_with = None;
            if let Some(p) = pred {
                if p.txn != TxnId::INITIAL
                    && my_install.overlaps(&p.install)
                    && resolve_with(p) == Some(PairOrder::FirstThenSecond)
                {
                    // I certainly precede my chain predecessor: swap.
                    swap_with = Some(p.uid);
                }
            }
            if swap_with.is_none() {
                if let Some(s) = succ {
                    if my_install.overlaps(&s.install)
                        && resolve_with(s) == Some(PairOrder::SecondThenFirst)
                    {
                        // My chain successor certainly precedes me: swap.
                        swap_with = Some(s.uid);
                    }
                }
            }
            match swap_with {
                Some(other_uid) => {
                    self.versions.swap_entries(key, my_uid, other_uid);
                }
                None => return,
            }
        }
    }

    fn handle_abort(&mut self, txn: TxnId, abort: Interval) {
        let Some(info) = self.txns.get_mut(txn) else {
            return;
        };
        if info.outcome.is_some() {
            return;
        }
        info.outcome = Some(TxnOutcome::Aborted(abort));
        let write_keys = info.write_keys.clone();
        let locked_read_keys = info.locked_read_keys.clone();
        info.matched_reads.clear();
        self.counters.aborted += 1;

        // Locks were held regardless of the outcome: ME violations between
        // an aborted and any other transaction are still bugs.
        if self.cfg.mechanisms.mutual_exclusion {
            let mut checks = std::mem::take(&mut self.scratch_lock_checks);
            let mut all_keys = write_keys.clone();
            all_keys.extend_from_slice(&locked_read_keys);
            for (ki, &key) in all_keys.iter().enumerate() {
                if !self.owns(key) {
                    continue;
                }
                self.set_cursor([self.cur_seq, PH_INLINE, ki as u64, 0, 0, 0, 0]);
                checks.clear();
                self.locks.release_one(txn, key, abort, &mut checks);
                for (key, check) in checks.drain(..) {
                    if let LockCheck::Violation { own_acquire, other } = check {
                        self.emit_violation(Violation::MutualExclusion {
                            key,
                            first: (txn, own_acquire, abort),
                            second: other,
                        });
                    }
                }
            }
            self.scratch_lock_checks = checks;
        }

        // Aborted versions are discarded (§II-A).
        for &key in &write_keys {
            if self.owns(key) {
                self.versions.abort(txn, std::slice::from_ref(&key));
            }
        }
    }

    /// First-updater-wins (§V-C, Alg. 2): for every other committed writer
    /// of `key`, either a serial order is deducible (ww) or the two
    /// updates were certainly concurrent — a lost update.
    fn check_fuw(&mut self, txn: TxnId, key: Key, snapshot: Interval, commit: Interval) {
        let mut violations = Vec::new();
        for other in self.versions.committed_others(key, txn) {
            let Some(other_commit) = other.visibility else {
                continue;
            };
            match resolve_exclusive_pair(&snapshot, &commit, &other.writer_snapshot, &other_commit)
            {
                PairOrder::CertainlyConcurrent => {
                    violations.push((other.txn, other.writer_snapshot, other_commit))
                }
                // Serial orders: the ww dependency is recorded by version
                // adjacency (link_version_adjacency); pairwise resolutions
                // beyond adjacency are implied transitively.
                PairOrder::FirstThenSecond | PairOrder::SecondThenFirst => {}
            }
        }
        for (other_txn, other_snapshot, other_commit) in violations {
            self.emit_violation(Violation::FirstUpdaterWins {
                key,
                first: (txn, snapshot, commit),
                second: (other_txn, other_snapshot, other_commit),
            });
        }
    }

    /// Emits ww edges between `txn`'s freshly committed version on `key`
    /// and its committed neighbours, plus rw edges from the predecessor's
    /// readers (Fig. 9 derivation).
    fn link_version_adjacency(&mut self, txn: TxnId, key: Key) {
        struct Planned {
            from: TxnId,
            to: TxnId,
            kind: DepKind,
            bucket: u8, // 0 certain, 1 deduced, 2 uncertain (no edge)
        }
        let mut planned: Vec<Planned> = Vec::new();
        {
            let Some((pred, me_entry, succ)) = self.versions.committed_neighbors(key, txn) else {
                return;
            };
            let my_install = me_entry.install;
            let Some(my_commit) = me_entry.visibility else {
                return;
            };
            let my_snapshot = me_entry.writer_snapshot;
            // `None` for an uncommitted neighbour: no ww edge to plan.
            let plan_pair = |other: &VersionEntry, other_is_pred: bool| -> Option<Planned> {
                let other_commit = other.visibility?;
                let overlap = my_install.overlaps(&other.install);
                let (from, to, bucket);
                if !overlap {
                    // Installation order is certain.
                    if other_is_pred {
                        from = other.txn;
                        to = txn;
                    } else {
                        from = txn;
                        to = other.txn;
                    }
                    bucket = 0;
                } else if self.cfg.mechanisms.mutual_exclusion {
                    // Locks pin the order: hold span is install..commit.
                    match resolve_exclusive_pair(
                        &my_install,
                        &my_commit,
                        &other.install,
                        &other_commit,
                    ) {
                        PairOrder::FirstThenSecond => {
                            from = txn;
                            to = other.txn;
                            bucket = 1;
                        }
                        PairOrder::SecondThenFirst => {
                            from = other.txn;
                            to = txn;
                            bucket = 1;
                        }
                        // Certain concurrency was already reported by the
                        // ME lock check; no order is deducible.
                        PairOrder::CertainlyConcurrent => {
                            from = txn;
                            to = other.txn;
                            bucket = 2;
                        }
                    }
                } else if self.cfg.mechanisms.first_updater_wins {
                    // FUW pins the order via snapshot..commit spans.
                    match resolve_exclusive_pair(
                        &my_snapshot,
                        &my_commit,
                        &other.writer_snapshot,
                        &other_commit,
                    ) {
                        PairOrder::FirstThenSecond => {
                            from = txn;
                            to = other.txn;
                            bucket = 1;
                        }
                        PairOrder::SecondThenFirst => {
                            from = other.txn;
                            to = txn;
                            bucket = 1;
                        }
                        PairOrder::CertainlyConcurrent => {
                            from = txn;
                            to = other.txn;
                            bucket = 2;
                        }
                    }
                } else {
                    // No mechanism resolves overlapping blind writes
                    // (e.g. pure OCC): the dependency stays uncertain.
                    from = txn;
                    to = other.txn;
                    bucket = 2;
                }
                Some(Planned {
                    from,
                    to,
                    kind: DepKind::Ww,
                    bucket,
                })
            };
            if let Some(pred) = pred {
                if pred.txn != TxnId::INITIAL {
                    planned.extend(plan_pair(pred, true));
                } else {
                    planned.push(Planned {
                        from: TxnId::INITIAL,
                        to: txn,
                        kind: DepKind::Ww,
                        bucket: 3, // initial: no edge, no stats
                    });
                }
                // rw edges: readers of the direct predecessor antidepend on
                // this writer (Fig. 9).
                if self.cfg.dep_transfer {
                    for &(reader, read_op) in &pred.readers {
                        if reader == txn {
                            continue;
                        }
                        let certain = read_op.certainly_before(&my_install);
                        planned.push(Planned {
                            from: reader,
                            to: txn,
                            kind: DepKind::Rw,
                            bucket: u8::from(!certain),
                        });
                    }
                }
            }
            if let Some(succ) = succ {
                // Out-of-order commit: this version's successor committed
                // first, so the pair was never linked.
                planned.extend(plan_pair(succ, false));
            }
        }
        for p in planned {
            match (p.kind, p.bucket) {
                (DepKind::Ww, 0) => self.stats.ww.certain += 1,
                (DepKind::Ww, 1) => self.stats.ww.deduced += 1,
                (DepKind::Ww, 2) => {
                    self.stats.ww.uncertain += 1;
                    continue; // no edge for unresolved pairs
                }
                (DepKind::Ww, _) => {
                    continue; // initial-state predecessor: nothing to add
                }
                (DepKind::Rw, 0) => self.stats.rw.certain += 1,
                (DepKind::Rw, _) => self.stats.rw.deduced += 1,
                (DepKind::Wr, _) => unreachable!("wr edges are planned elsewhere"),
            }
            self.add_dep(p.from, p.to, p.kind);
        }
    }

    /// Adds a dependency edge and reports any certifier-rule match
    /// (direct), or buffers the edge for the driver's cross-shard
    /// certifier (shard mode — the certifier needs the *global* graph).
    fn add_dep(&mut self, from: TxnId, to: TxnId, kind: DepKind) {
        if self.role.is_some() {
            let k = self.cursor.next();
            self.emit_buf.push((k, Effect::Edge { from, to, kind }));
            return;
        }
        let rule = self.cfg.mechanisms.certifier;
        if let Some(v) = self.graph.add_edge(from, to, kind, rule) {
            self.report
                .violations
                .push(Violation::SerializationCertifier {
                    pattern: v.pattern.to_string(),
                    txns: v.txns,
                });
        }
    }

    /// Periodic pruning of structures no active transaction can still
    /// conflict with (§V complexity-analysis paragraphs; Definition 4).
    fn collect_garbage(&mut self) {
        let before = self.footprint().total();
        self.counters.peak_footprint = self.counters.peak_footprint.max(before);
        let t0 = obs::span_start();
        let mut low = self
            .txns
            .earliest_active_snapshot()
            .unwrap_or(self.stream_pos)
            .min(self.stream_pos);
        if let Some(pending_low) = self
            .pending_reads
            .iter()
            .map(|Reverse(p)| p.snapshot.lo)
            .min()
        {
            low = low.min(pending_low);
        }
        self.versions.prune(low);
        self.locks.prune(low);
        self.graph.prune(low);
        self.txns.prune(low);
        if t0.is_some() {
            let lane = match self.role {
                None => obs::LANE_DRIVER,
                Some(r) => obs::shard_lane(r.shard),
            };
            let dur = obs::span_end(obs::Stage::GcBarrier, lane, t0);
            obs::hist(obs::HistId::GcPauseUs, dur);
            obs::ctr(obs::Counter::GcPasses, 1);
            let after = self.footprint().total();
            obs::ctr(
                obs::Counter::GcReclaimedEntries,
                before.saturating_sub(after) as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn verify_all(
        cfg: VerifierConfig,
        preload: &[(u64, u64)],
        traces: Vec<Trace>,
    ) -> VerifyOutcome {
        let mut v = Verifier::new(cfg);
        for &(k, val) in preload {
            v.preload(Key(k), Value(val));
        }
        for t in &traces {
            v.process(t);
        }
        v.finish()
    }

    fn sr_cfg() -> VerifierConfig {
        VerifierConfig::for_level(IsolationLevel::Serializable)
    }

    #[test]
    fn clean_serial_history_is_clean() {
        let mut b = TraceBuilder::new();
        // t1 writes k1=10 and commits; t2 reads 10 and commits.
        b.write(10, 12, 0, 1, vec![(1, 10)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 10)]);
        b.commit(23, 25, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert!(out.report.is_clean(), "{}", out.report);
        assert_eq!(out.counters.committed, 2);
        assert_eq!(out.stats.wr.certain, 1);
    }

    #[test]
    fn dirty_read_is_cr_violation() {
        let mut b = TraceBuilder::new();
        // t1 writes k1=10 but has not committed; t2 reads 10: dirty read.
        b.write(10, 12, 0, 1, vec![(1, 10)]);
        b.read(20, 22, 1, 2, vec![(1, 10)]);
        b.commit(23, 25, 1, 2);
        b.commit(30, 32, 0, 1);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );
    }

    #[test]
    fn stale_read_is_cr_violation() {
        let mut b = TraceBuilder::new();
        // k1 is updated to 10 and committed long before t2's snapshot, yet
        // t2 reads the initial 0.
        b.write(10, 12, 0, 1, vec![(1, 10)]);
        b.commit(13, 15, 0, 1);
        b.read(100, 102, 1, 2, vec![(1, 0)]);
        b.commit(103, 105, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );
    }

    #[test]
    fn read_own_write_is_fine_and_mismatch_is_violation() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 7)]);
        b.read(13, 15, 0, 1, vec![(1, 7)]); // own write: fine
        b.commit(16, 18, 0, 1);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert!(out.report.is_clean(), "{}", out.report);

        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 7)]);
        b.read(13, 15, 0, 1, vec![(1, 0)]); // lost own update
        b.commit(16, 18, 0, 1);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );
    }

    #[test]
    fn repeatable_read_violation_under_txn_snapshot() {
        // t2 reads k1 twice; between the reads t1 commits an update and the
        // second read observes it. Legal at RC (statement snapshots),
        // a CR violation at RR/SI (transaction snapshot).
        let history = |b: &mut TraceBuilder| {
            b.read(10, 12, 1, 2, vec![(1, 0)]);
            b.write(20, 22, 0, 1, vec![(1, 9)]);
            b.commit(23, 25, 0, 1);
            b.read(30, 32, 1, 2, vec![(1, 9)]);
            b.commit(33, 35, 1, 2);
        };
        let mut b = TraceBuilder::new();
        history(&mut b);
        let out = verify_all(
            VerifierConfig::for_level(IsolationLevel::RepeatableRead),
            &[(1, 0)],
            b.build_sorted(),
        );
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );

        let mut b = TraceBuilder::new();
        history(&mut b);
        let out = verify_all(
            VerifierConfig::for_level(IsolationLevel::ReadCommitted),
            &[(1, 0)],
            b.build_sorted(),
        );
        assert!(out.report.is_clean(), "{}", out.report);
    }

    #[test]
    fn certainly_concurrent_write_locks_are_me_violation() {
        let mut b = TraceBuilder::new();
        // Two transactions hold the write lock on k1 at the same time.
        b.write(0, 10, 0, 1, vec![(1, 5)]);
        b.write(1, 9, 1, 2, vec![(1, 6)]);
        b.commit(11, 20, 0, 1);
        b.commit(12, 21, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert_eq!(
            out.report.count(crate::report::Mechanism::MutualExclusion),
            1
        );
    }

    #[test]
    fn lost_update_is_fuw_violation_without_me_noise() {
        // Two certainly-concurrent committed updates of the same record,
        // with lock checking off (an MVCC-FUW system like Percolator).
        let mut cfg = VerifierConfig::for_mechanisms(MechanismSet {
            consistent_read: Some(SnapshotLevel::Transaction),
            mutual_exclusion: false,
            first_updater_wins: true,
            certifier: None,
        });
        cfg.gc = false;
        let mut b = TraceBuilder::new();
        // Both snapshots happen before either commit: certainly concurrent.
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(1, 0)]);
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = verify_all(cfg, &[(1, 0)], b.build_sorted());
        assert!(out
            .report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FirstUpdaterWins { .. })));
    }

    #[test]
    fn write_skew_triggers_ssi_dangerous_structure() {
        // Classic write skew: t1 reads k1 writes k2, t2 reads k2 writes k1,
        // both concurrent, both commit. rw(t1->t2) and rw(t2->t1): each
        // transaction is a pivot with concurrent in+out rw edges.
        let mut b = TraceBuilder::new();
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(2, 0)]);
        b.write(10, 12, 0, 1, vec![(2, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0), (2, 0)], b.build_sorted());
        assert!(
            out.report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::SerializationCertifier { .. })),
            "{}",
            out.report
        );
    }

    #[test]
    fn write_skew_is_legal_at_snapshot_isolation() {
        let mut b = TraceBuilder::new();
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(2, 0)]);
        b.write(10, 12, 0, 1, vec![(2, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = verify_all(
            VerifierConfig::for_level(IsolationLevel::SnapshotIsolation),
            &[(1, 0), (2, 0)],
            b.build_sorted(),
        );
        assert!(out.report.is_clean(), "{}", out.report);
    }

    #[test]
    fn ww_dependencies_deduced_for_serial_writers() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.commit(13, 15, 0, 1);
        b.write(20, 22, 1, 2, vec![(1, 6)]);
        b.commit(23, 25, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert!(out.report.is_clean());
        assert_eq!(out.stats.ww.certain, 1);
    }

    #[test]
    fn overlapping_blind_writes_deduced_via_me() {
        // Install intervals overlap, but lock order resolves: t1 released
        // (committed) before t2's commit started.
        let mut b = TraceBuilder::new();
        b.write(10, 20, 0, 1, vec![(1, 5)]);
        b.write(15, 40, 1, 2, vec![(1, 6)]);
        b.commit(21, 30, 0, 1);
        b.commit(41, 50, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert!(out.report.is_clean(), "{}", out.report);
        assert_eq!(out.stats.ww.deduced, 1);
        assert_eq!(out.stats.ww.uncertain, 0);
    }

    #[test]
    fn overlapping_blind_writes_uncertain_without_me_or_fuw() {
        let mut cfg = VerifierConfig::for_mechanisms(MechanismSet {
            consistent_read: Some(SnapshotLevel::Transaction),
            mutual_exclusion: false,
            first_updater_wins: false,
            certifier: None,
        });
        cfg.gc = false;
        let mut b = TraceBuilder::new();
        b.write(10, 20, 0, 1, vec![(1, 5)]);
        b.write(15, 40, 1, 2, vec![(1, 6)]);
        b.commit(21, 30, 0, 1);
        b.commit(41, 50, 1, 2);
        let out = verify_all(cfg, &[(1, 0)], b.build_sorted());
        assert_eq!(out.stats.ww.uncertain, 1);
    }

    #[test]
    fn aborted_transactions_leave_no_trace_in_graph() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.abort(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 0)]); // must still see initial value
        b.commit(23, 25, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert!(out.report.is_clean(), "{}", out.report);
        assert_eq!(out.counters.aborted, 1);
    }

    #[test]
    fn reading_aborted_write_is_violation() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.abort(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 5)]); // observes discarded version
        b.commit(23, 25, 1, 2);
        let out = verify_all(sr_cfg(), &[(1, 0)], b.build_sorted());
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );
    }

    #[test]
    fn gc_keeps_verification_correct() {
        // Long serial chain with aggressive GC; every read checks out and
        // footprint stays bounded.
        let mut cfg = sr_cfg();
        cfg.gc_every = 8;
        let mut v = Verifier::new(cfg);
        v.preload(Key(1), Value(0));
        let mut ts = 10u64;
        for i in 0..200u64 {
            let txn = i + 1;
            let expect = if i == 0 { 0 } else { i };
            let mut b = TraceBuilder::new();
            b.read(ts, ts + 2, 0, txn, vec![(1, expect)]);
            b.write(ts + 3, ts + 5, 0, txn, vec![(1, i + 1)]);
            b.commit(ts + 6, ts + 8, 0, txn);
            for t in b.build_sorted() {
                v.process(&t);
            }
            ts += 10;
        }
        let fp = v.footprint();
        assert!(fp.versions < 20, "versions not pruned: {fp:?}");
        assert!(fp.graph_nodes < 20, "graph not pruned: {fp:?}");
        let out = v.finish();
        assert!(out.report.is_clean(), "{}", out.report);
        assert_eq!(out.counters.committed, 200);
    }

    #[test]
    fn locked_read_conflicts_with_write_lock() {
        // Bug 3 shape (§VI-F): a FOR UPDATE read overlapping a held write
        // lock on the same record.
        let mut b = TraceBuilder::new();
        b.write(0, 10, 0, 1, vec![(1, 5)]);
        let mut traces = b.build_sorted();
        traces.push(Trace::new(
            Interval::new(Timestamp(1), Timestamp(9)),
            crate::types::ClientId(1),
            TxnId(2),
            OpKind::LockedRead(vec![(Key(1), Value(0))]),
        ));
        let mut b = TraceBuilder::new();
        b.commit(11, 20, 0, 1);
        b.commit(12, 21, 1, 2);
        traces.extend(b.build_sorted());
        traces.sort_by_key(|t| t.ts_bef());
        let out = verify_all(sr_cfg(), &[(1, 0)], traces);
        assert_eq!(
            out.report.count(crate::report::Mechanism::MutualExclusion),
            1
        );
    }

    #[test]
    fn finish_flushes_pending_reads() {
        let mut v = Verifier::new(sr_cfg());
        v.preload(Key(1), Value(0));
        let mut b = TraceBuilder::new();
        b.read(10, 12, 0, 1, vec![(1, 99)]); // bad read, check deferred
        for t in b.build_sorted() {
            v.process(&t);
        }
        // No later trace arrived to trigger the flush; finish must.
        let out = v.finish();
        assert_eq!(
            out.report.count(crate::report::Mechanism::ConsistentRead),
            1
        );
    }
}
