//! Ordered version lists and the candidate-version-set computation at the
//! core of consistent-read verification (§V-A, Theorem 2).
//!
//! For every record the verifier mirrors the version chain the DBMS must
//! have maintained. Versions are ordered by the after-timestamp of their
//! *installation* interval (the write operation's trace interval), exactly
//! as the paper prescribes. Visibility, however, is governed by the
//! *commit* interval of the installing transaction: a version can only
//! become visible to snapshots at the instant its transaction commits.
//! Using the commit interval for the five-way classification keeps the
//! check sound for long transactions whose writes happen far before their
//! commit (a refinement the paper leaves implicit — its Fig. 6 examples
//! have write and commit adjacent).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interval::Interval;
use crate::store::{RecordAddr, SpillTier, StoreResult};
use crate::types::{Key, Timestamp, TxnId, Value};
use serde::{Deserialize, Serialize};

/// Stable identity of a version, immune to list reshuffling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VersionUid(pub u64);

/// One mirrored record version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionEntry {
    /// Stable id.
    pub uid: VersionUid,
    /// Value the version carries (the black-box identity of the version).
    pub value: Value,
    /// The transaction that installed it.
    pub txn: TxnId,
    /// Version installation time interval (Definition 1): the write
    /// operation's trace interval.
    pub install: Interval,
    /// Commit interval of the installing transaction once known; `None`
    /// while the transaction is still pending. A pending version is
    /// invisible to every snapshot.
    pub visibility: Option<Interval>,
    /// Snapshot-generation interval of the installing transaction (its
    /// first operation), kept here so FUW checks survive transaction-table
    /// garbage collection.
    pub writer_snapshot: Interval,
    /// Committed transactions whose reads were uniquely matched to this
    /// version, with each read operation's interval — the sources of
    /// future rw antidependencies.
    pub readers: Vec<(TxnId, Interval)>,
}

/// The paper's five-way classification of a version against a snapshot
/// generation interval (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionClass {
    /// Installed (committed) certainly after the snapshot: invisible.
    Future,
    /// Commit interval overlaps the snapshot interval: possibly visible.
    Overlap,
    /// The latest version certainly committed before the snapshot:
    /// possibly visible (it is what an exact snapshot "should" see).
    Pivot,
    /// Certainly before the snapshot but with a commit interval
    /// overlapping the pivot's: the order against the pivot is unknown, so
    /// possibly visible.
    PivotOverlap,
    /// Certainly overwritten before the snapshot: invisible.
    Garbage,
    /// Not yet committed: invisible to other transactions.
    Pending,
}

/// Versions of one record, ordered by `install.hi`.
#[derive(Debug, Default)]
pub struct RecordVersions {
    entries: Vec<VersionEntry>,
}

impl RecordVersions {
    /// All entries in installation order.
    #[must_use]
    pub fn entries(&self) -> &[VersionEntry] {
        &self.entries
    }

    fn insert_sorted(&mut self, entry: VersionEntry) {
        // The stream is dispatched in ts_bef order, so installs almost
        // always append; fall back to insertion sort for stragglers.
        let pos = self
            .entries
            .iter()
            .rposition(|e| e.install.hi <= entry.install.hi)
            .map_or(0, |p| p + 1);
        self.entries.insert(pos, entry);
    }

    /// Classifies every committed entry against `snapshot`.
    ///
    /// Returns `(class per entry index)`, parallel to `entries`.
    #[must_use]
    pub fn classify(&self, snapshot: &Interval) -> Vec<VersionClass> {
        // Pass 1: partition into future / overlap / past.
        #[derive(Clone, Copy, PartialEq)]
        enum Rough {
            Future,
            Overlap,
            /// Past version, carrying its (necessarily present) commit
            /// interval so later passes need no re-lookup.
            Past(Interval),
            Pending,
        }
        let rough: Vec<Rough> = self
            .entries
            .iter()
            .map(|e| match e.visibility {
                None => Rough::Pending,
                Some(vis) => {
                    if snapshot.certainly_before(&vis) {
                        Rough::Future
                    } else if vis.certainly_before(snapshot) {
                        Rough::Past(vis)
                    } else {
                        Rough::Overlap
                    }
                }
            })
            .collect();

        // Pass 2: the pivot is the past version with the latest commit
        // after-timestamp; past versions overlapping it are pivot-overlaps,
        // the rest garbage.
        let pivot = rough
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Rough::Past(vis) => Some((i, *vis)),
                _ => None,
            })
            .max_by_key(|&(_, vis)| (vis.hi, vis.lo));

        rough
            .iter()
            .enumerate()
            .map(|(i, r)| match r {
                Rough::Pending => VersionClass::Pending,
                Rough::Future => VersionClass::Future,
                Rough::Overlap => VersionClass::Overlap,
                Rough::Past(vis) => match pivot {
                    Some((p, _)) if i == p => VersionClass::Pivot,
                    Some((_, pivot_vis)) if vis.overlaps(&pivot_vis) => VersionClass::PivotOverlap,
                    Some(_) => VersionClass::Garbage,
                    // A past version exists, so a pivot was found above;
                    // degrade to possibly-visible rather than panic.
                    None => VersionClass::PivotOverlap,
                },
            })
            .collect()
    }
}

/// Result of checking one `(key, observed value)` element of a read set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadMatch {
    /// The read observed the transaction's own pending write.
    OwnWrite,
    /// Exactly one candidate version carries the observed value: a wr
    /// dependency on `writer` is deduced (§V-A, Alg. 2 lines 8–9).
    Unique {
        /// Installing transaction of the matched version.
        writer: TxnId,
        /// Stable id of the matched version.
        uid: VersionUid,
        /// `true` when the match was already unambiguous from
        /// non-overlapping intervals alone (candidate set of size one).
        interval_certain: bool,
    },
    /// Multiple candidates carry the observed value (duplicate writes):
    /// the dependency stays uncertain.
    Ambiguous {
        /// Number of candidates with the observed value.
        matches: usize,
    },
    /// No candidate version carries the observed value: a CR violation.
    Violation {
        /// Values the read was allowed to observe.
        candidates: Vec<Value>,
    },
}

/// One spilled record in a checkpoint's spill index: where its version
/// chain lives on disk and how many versions it holds (so footprint
/// accounting restores without reading the record).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpillIndexEntry {
    /// The spilled record.
    pub key: Key,
    /// Version count of the spilled chain.
    pub versions: u64,
    /// Durable address of the serialized chain.
    pub addr: RecordAddr,
}

/// Plain-data image of one record's version chain, used by checkpointing.
/// Entry order is the (resolved) installation order and must be preserved
/// exactly across a round-trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyVersions {
    /// The record.
    pub key: Key,
    /// Its version chain, in installation order.
    pub entries: Vec<VersionEntry>,
}

/// What one [`VersionStore::prune`] pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneBreakdown {
    /// Version entries dropped from surviving records (certainly-dead
    /// versions below the pivot).
    pub versions: usize,
    /// Whole records removed from the store because no version remained
    /// (every version they ever held was aborted).
    pub records: usize,
}

impl PruneBreakdown {
    /// Total removals, versions and records combined.
    #[must_use]
    pub fn total(&self) -> usize {
        self.versions + self.records
    }
}

/// The mirrored multi-version store for all records.
#[derive(Debug, Default)]
pub struct VersionStore {
    records: FxHashMap<Key, RecordVersions>,
    next_uid: u64,
    /// Pending (uncommitted) version count, for footprint accounting.
    pending: usize,
    /// Total stored versions, maintained incrementally so footprint
    /// queries are O(1).
    total: usize,
    /// Keys touched since the last prune: garbage collection only needs
    /// to revisit these (a long-running workload may accumulate millions
    /// of quiescent records).
    dirty: FxHashSet<Key>,
    /// Disk-backed tier for cold records; `None` = everything resident.
    spill: Option<SpillTier>,
    /// Version counts of spilled records, so `total` (which includes
    /// spilled versions — the verification footprint is unchanged by
    /// *where* a version lives) stays exact without disk reads.
    spilled_counts: FxHashMap<Key, usize>,
    /// Sum of `spilled_counts` values, maintained incrementally.
    spilled_total: usize,
}

impl VersionStore {
    /// Installs the initial (pre-workload) version of `key`.
    pub fn preload(&mut self, key: Key, value: Value) {
        let uid = self.fresh_uid();
        self.total += 1;
        self.records
            .entry(key)
            .or_default()
            .insert_sorted(VersionEntry {
                uid,
                value,
                txn: TxnId::INITIAL,
                install: Interval::GENESIS,
                visibility: Some(Interval::GENESIS),
                writer_snapshot: Interval::GENESIS,
                readers: Vec::new(),
            });
    }

    /// Mirrors a write: a pending version of `key` installed by `txn`
    /// within `install`. `writer_snapshot` is the installing transaction's
    /// snapshot-generation interval (needed later for FUW checks).
    pub fn install(
        &mut self,
        key: Key,
        value: Value,
        txn: TxnId,
        install: Interval,
        writer_snapshot: Interval,
    ) -> VersionUid {
        let uid = self.fresh_uid();
        self.total += 1;
        self.dirty.insert(key);
        self.records
            .entry(key)
            .or_default()
            .insert_sorted(VersionEntry {
                uid,
                value,
                txn,
                install,
                visibility: None,
                writer_snapshot,
                readers: Vec::new(),
            });
        self.pending += 1;
        uid
    }

    /// Marks every pending version of `txn` on `keys` as committed with
    /// `commit` as its visibility interval.
    pub fn commit(&mut self, txn: TxnId, keys: &[Key], commit: Interval) {
        for key in keys {
            self.dirty.insert(*key);
            if let Some(rec) = self.records.get_mut(key) {
                for e in &mut rec.entries {
                    if e.txn == txn && e.visibility.is_none() {
                        e.visibility = Some(commit);
                        self.pending -= 1;
                    }
                }
            }
        }
    }

    /// Discards every pending version of `txn` on `keys`.
    pub fn abort(&mut self, txn: TxnId, keys: &[Key]) {
        for key in keys {
            if let Some(rec) = self.records.get_mut(key) {
                let before = rec.entries.len();
                rec.entries
                    .retain(|e| !(e.txn == txn && e.visibility.is_none()));
                let removed = before - rec.entries.len();
                self.pending -= removed;
                self.total -= removed;
                if removed > 0 {
                    // The record may now be an empty husk (every version
                    // aborted); mark it so the next prune can drop it.
                    self.dirty.insert(*key);
                }
            }
        }
    }

    /// The version list of `key`, if any version was ever seen.
    #[must_use]
    pub fn record(&self, key: Key) -> Option<&RecordVersions> {
        self.assert_resident(key);
        self.records.get(&key)
    }

    /// Mutable access for reader registration.
    pub fn record_mut(&mut self, key: Key) -> Option<&mut RecordVersions> {
        self.assert_resident(key);
        self.records.get_mut(&key)
    }

    /// Checks one read-set element against the candidate version set of
    /// `snapshot` (Alg. 2, `ConsistentRead`).
    ///
    /// `minimal` selects the Theorem-2 minimal candidate set; with it off
    /// (ablation) every non-future committed version is a candidate.
    #[must_use]
    pub fn check_read(
        &self,
        key: Key,
        observed: Value,
        snapshot: &Interval,
        minimal: bool,
    ) -> ReadMatch {
        let Some(rec) = self.records.get(&key) else {
            // Never-written key: only an unobserved initial state could
            // match, and the verifier preloads all initial state, so this
            // read invented a value.
            return ReadMatch::Violation { candidates: vec![] };
        };
        let classes = rec.classify(snapshot);
        let candidate = |class: VersionClass| -> bool {
            match class {
                VersionClass::Overlap | VersionClass::Pivot | VersionClass::PivotOverlap => true,
                VersionClass::Garbage => !minimal,
                VersionClass::Future | VersionClass::Pending => false,
            }
        };
        let mut matches: Vec<&VersionEntry> = Vec::new();
        let mut n_candidates = 0usize;
        for (e, class) in rec.entries.iter().zip(&classes) {
            if candidate(*class) {
                n_candidates += 1;
                if e.value == observed {
                    matches.push(e);
                }
            }
        }
        match matches.len() {
            0 => ReadMatch::Violation {
                candidates: rec
                    .entries
                    .iter()
                    .zip(&classes)
                    .filter(|(_, c)| candidate(**c))
                    .map(|(e, _)| e.value)
                    .collect(),
            },
            1 => ReadMatch::Unique {
                writer: matches[0].txn,
                uid: matches[0].uid,
                interval_certain: n_candidates == 1,
            },
            n => ReadMatch::Ambiguous { matches: n },
        }
    }

    /// Registers `reader` (with its read-operation interval) on the
    /// version `uid` of `key`, for later rw derivation. No-op if the
    /// version has been pruned.
    pub fn add_reader(&mut self, key: Key, uid: VersionUid, reader: TxnId, read_op: Interval) {
        self.assert_resident(key);
        if let Some(rec) = self.records.get_mut(&key) {
            if let Some(e) = rec.entries.iter_mut().find(|e| e.uid == uid) {
                e.readers.push((reader, read_op));
            }
        }
    }

    /// The committed predecessor of `txn`'s committed version on `key` in
    /// installation order, together with the version itself:
    /// `(predecessor, successor)`.
    #[must_use]
    pub fn committed_adjacency(
        &self,
        key: Key,
        txn: TxnId,
    ) -> Option<(&VersionEntry, &VersionEntry)> {
        self.assert_resident(key);
        let rec = self.records.get(&key)?;
        let pos = rec
            .entries
            .iter()
            .position(|e| e.txn == txn && e.visibility.is_some())?;
        let pred = rec.entries[..pos]
            .iter()
            .rev()
            .find(|e| e.visibility.is_some())?;
        Some((pred, &rec.entries[pos]))
    }

    /// The committed neighbours of `txn`'s committed version on `key`:
    /// `(predecessor, self, successor)` in installation order.
    #[must_use]
    pub fn committed_neighbors(
        &self,
        key: Key,
        txn: TxnId,
    ) -> Option<(Option<&VersionEntry>, &VersionEntry, Option<&VersionEntry>)> {
        self.assert_resident(key);
        let rec = self.records.get(&key)?;
        let pos = rec
            .entries
            .iter()
            .position(|e| e.txn == txn && e.visibility.is_some())?;
        let pred = rec.entries[..pos]
            .iter()
            .rev()
            .find(|e| e.visibility.is_some());
        let succ = rec.entries[pos + 1..]
            .iter()
            .find(|e| e.visibility.is_some());
        Some((pred, &rec.entries[pos], succ))
    }

    /// The committed version directly following version `uid` of `key` in
    /// installation order, if any.
    #[must_use]
    pub fn committed_successor(&self, key: Key, uid: VersionUid) -> Option<&VersionEntry> {
        self.assert_resident(key);
        let rec = self.records.get(&key)?;
        let pos = rec.entries.iter().position(|e| e.uid == uid)?;
        rec.entries[pos + 1..]
            .iter()
            .find(|e| e.visibility.is_some())
    }

    /// Swaps the positions of two versions of `key` in the chain.
    ///
    /// Used when a mechanism (ME/FUW) proves the raw install-interval
    /// order wrong for an overlapping pair: the chain must reflect the
    /// resolved order, or rw derivation would point backwards.
    pub fn swap_entries(&mut self, key: Key, a: VersionUid, b: VersionUid) -> bool {
        self.assert_resident(key);
        let Some(rec) = self.records.get_mut(&key) else {
            return false;
        };
        let (Some(ia), Some(ib)) = (
            rec.entries.iter().position(|e| e.uid == a),
            rec.entries.iter().position(|e| e.uid == b),
        ) else {
            return false;
        };
        rec.entries.swap(ia, ib);
        true
    }

    /// All committed versions of `key` except those installed by `txn`
    /// (the FUW conflict candidates for a committing writer).
    pub fn committed_others(&self, key: Key, txn: TxnId) -> impl Iterator<Item = &VersionEntry> {
        self.assert_resident(key);
        self.records
            .get(&key)
            .map(|r| r.entries.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter(move |e| e.txn != txn && e.txn != TxnId::INITIAL && e.visibility.is_some())
    }

    /// Drops versions certainly dead before `low`: committed versions whose
    /// visibility ended before `low` and which are *certainly overwritten*.
    ///
    /// For any snapshot taken after `low`, every such version is "past"
    /// (Fig. 6), so the candidate set will consist of the pivot plus the
    /// versions whose visibility interval overlaps the pivot's. Those must
    /// survive pruning — dropping a pivot-overlap version would turn a
    /// legal read of it into a false CR violation (the exact-commit order
    /// inside overlapping commit intervals is unknowable, so either
    /// version may be the one the DBMS actually serves). Only versions
    /// certainly before the pivot (garbage) are removed.
    ///
    /// Returns a [`PruneBreakdown`] of what was removed.
    pub fn prune(&mut self, low: Timestamp) -> PruneBreakdown {
        let mut out = PruneBreakdown::default();
        for key in self.dirty.drain() {
            let Some(rec) = self.records.get_mut(&key) else {
                continue;
            };
            if rec.entries.is_empty() {
                // An empty husk: every version it ever held was aborted.
                self.records.remove(&key);
                out.records += 1;
                continue;
            }
            // The pivot: latest old version by visibility after-timestamp.
            let Some(pivot_vis) = rec
                .entries
                .iter()
                .filter_map(|e| e.visibility.filter(|v| v.hi < low))
                .max_by_key(|v| (v.hi, v.lo))
            else {
                continue;
            };
            let before = rec.entries.len();
            rec.entries.retain(|e| {
                let Some(vis) = e.visibility else {
                    return true; // pending versions always survive
                };
                if vis.hi >= low {
                    return true; // recent versions always survive
                }
                // Old: survive iff pivot or pivot-overlap. The equality
                // test matters for degenerate (instant) intervals such as
                // the preloaded initial state, which would otherwise count
                // as "certainly before" themselves.
                vis == pivot_vis || !vis.certainly_before(&pivot_vis)
            });
            out.versions += before - rec.entries.len();
            // Reader lists on surviving old versions are stale: those
            // reads have been fully processed (their rw edges derived).
            for e in &mut rec.entries {
                if e.visibility.is_some_and(|v| v.hi < low) && !e.readers.is_empty() {
                    e.readers.clear();
                    e.readers.shrink_to_fit();
                }
            }
        }
        self.total -= out.versions;
        out
    }

    /// Cheap estimate of the store's live memory: every version entry at
    /// its inline size plus a flat allowance for its reader list, and
    /// every record at its map-slot overhead.
    #[must_use]
    pub fn mem_usage(&self) -> crate::budget::MemUsage {
        let per_version = std::mem::size_of::<VersionEntry>() + 32;
        let per_record = std::mem::size_of::<RecordVersions>() + 48;
        // Spilled versions cost disk, not memory: count residents only,
        // plus the tier's own footprint (page cache + index).
        let resident = self.total - self.spilled_total;
        let mut usage = crate::budget::MemUsage::per_entry(resident, per_version)
            + crate::budget::MemUsage {
                bytes: (self.records.len() * per_record) as u64,
                entries: 0,
            };
        if let Some(tier) = &self.spill {
            usage = usage + tier.mem_usage();
        }
        usage
    }

    /// Total number of mirrored versions (footprint metric), O(1).
    #[must_use]
    pub fn version_count(&self) -> usize {
        self.total
    }

    /// Number of records with at least one version, resident or spilled
    /// (the verification footprint is independent of where a chain
    /// lives).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len() + self.spilled_counts.len()
    }

    fn fresh_uid(&mut self) -> VersionUid {
        self.next_uid += 1;
        VersionUid(self.next_uid)
    }

    /// The highest uid handed out so far (the checkpoint cursor for
    /// [`VersionStore::restore`]).
    #[must_use]
    pub fn next_uid(&self) -> u64 {
        self.next_uid
    }

    /// Flattens the store into plain-data snapshots, sorted by key.
    /// Per-key entry order (installation order) is preserved.
    #[must_use]
    pub fn snapshot(&self) -> Vec<KeyVersions> {
        let mut snaps: Vec<KeyVersions> = self
            .records
            .iter()
            .map(|(&key, rec)| KeyVersions {
                key,
                entries: rec.entries.clone(),
            })
            .collect();
        snaps.sort_unstable_by_key(|s| s.key);
        snaps
    }

    /// Rebuilds a store from [`KeyVersions`] produced by
    /// [`VersionStore::snapshot`]. `next_uid` must be the value reported by
    /// [`VersionStore::next_uid`] at snapshot time. The pending count and
    /// total are recomputed; every restored key is marked dirty so the next
    /// prune revisits it.
    #[must_use]
    pub fn restore(snaps: &[KeyVersions], next_uid: u64) -> VersionStore {
        let mut records: FxHashMap<Key, RecordVersions> = FxHashMap::default();
        let mut dirty = FxHashSet::default();
        let mut pending = 0;
        let mut total = 0;
        for snap in snaps {
            total += snap.entries.len();
            pending += snap
                .entries
                .iter()
                .filter(|e| e.visibility.is_none())
                .count();
            dirty.insert(snap.key);
            records.insert(
                snap.key,
                RecordVersions {
                    entries: snap.entries.clone(),
                },
            );
        }
        VersionStore {
            records,
            next_uid,
            pending,
            total,
            dirty,
            spill: None,
            spilled_counts: FxHashMap::default(),
            spilled_total: 0,
        }
    }

    /// Attaches a disk-spilling tier. Until one is attached every record
    /// stays resident and the store behaves exactly as before.
    pub fn attach_spill(&mut self, tier: SpillTier) {
        self.spill = Some(tier);
    }

    /// `true` when a spill tier is attached.
    #[must_use]
    pub fn spill_attached(&self) -> bool {
        self.spill.is_some()
    }

    /// The attached tier, if any (stats and sync access).
    #[must_use]
    pub fn spill_tier(&self) -> Option<&SpillTier> {
        self.spill.as_ref()
    }

    /// Number of records currently paged out.
    #[must_use]
    pub fn spilled_records(&self) -> usize {
        self.spilled_counts.len()
    }

    /// `true` when `key`'s chain is currently paged out.
    #[must_use]
    pub fn is_spilled(&self, key: Key) -> bool {
        self.spilled_counts.contains_key(&key)
    }

    /// Debug-build safety net: key-access methods must only see resident
    /// chains — a spilled chain would silently look like "no record",
    /// which is exactly the silent-wrong-verdict class the store module
    /// exists to kill. Callers fault records in first
    /// ([`VersionStore::ensure_resident`]).
    fn assert_resident(&self, key: Key) {
        debug_assert!(
            !self.is_spilled(key),
            "access to spilled record {key:?} without ensure_resident"
        );
    }

    /// Faults `key`'s chain back into memory if it is spilled. Returns
    /// `true` when a disk read actually happened. Fault-in does **not**
    /// mark the key dirty: residency is invisible to prune, so the GC
    /// trajectory (and therefore the verdict) is byte-identical to an
    /// unconstrained in-memory run.
    pub fn ensure_resident(&mut self, key: Key) -> StoreResult<bool> {
        if !self.spilled_counts.contains_key(&key) {
            return Ok(false);
        }
        let tier = self.spill.as_ref().expect("spilled keys imply a tier"); // lint: allow(L001): spilled_counts is non-empty only while a tier is attached
        let Some(snap) = tier.take(key)? else {
            // Index said spilled but the tier lost it: accounting bug or
            // external tampering; surface as corruption, never guess.
            return Err(crate::store::StoreError::corrupt(format!(
                "record {key:?} in spill accounting but absent from tier"
            )));
        };
        let n = self.spilled_counts.remove(&key).unwrap_or(0);
        self.spilled_total -= n;
        self.records.insert(
            key,
            RecordVersions {
                entries: snap.entries,
            },
        );
        Ok(true)
    }

    /// Pages cold records out until estimated resident usage drops to
    /// `target_bytes` (or no candidates remain). Cold = not touched since
    /// the last prune (not dirty) and fully committed (no pending
    /// version). Candidates are spilled in sorted key order so the pass
    /// is deterministic. Returns the number of records spilled.
    ///
    /// On a tier write error the pass stops and the error is returned;
    /// the record that failed stays resident (the in-memory copy is
    /// always authoritative until a verified write succeeds), so the
    /// caller can count the fallback and keep verifying.
    pub fn spill_cold(&mut self, target_bytes: u64) -> StoreResult<usize> {
        if self.spill.is_none() {
            return Ok(0);
        }
        let mut candidates: Vec<Key> = self
            .records
            .iter()
            .filter(|(k, rec)| {
                !self.dirty.contains(*k)
                    && !rec.entries.is_empty()
                    && rec.entries.iter().all(|e| e.visibility.is_some())
            })
            .map(|(&k, _)| k)
            .collect();
        candidates.sort_unstable();
        let mut spilled = 0usize;
        for key in candidates {
            if self.mem_usage().bytes <= target_bytes {
                break;
            }
            let rec = self.records.get(&key).expect("candidate is resident"); // lint: allow(L001): candidates are drawn from `records` under the same borrow
            let snap = KeyVersions {
                key,
                entries: rec.entries.clone(),
            };
            let tier = self.spill.as_ref().expect("checked above"); // lint: allow(L001): guarded by the can_spill() gate on entry
            tier.put(&snap)?;
            let n = snap.entries.len();
            self.records.remove(&key);
            self.spilled_counts.insert(key, n);
            self.spilled_total += n;
            spilled += 1;
        }
        Ok(spilled)
    }

    /// Detaches and drops the spill tier after faulting **every** spilled
    /// record back in (finish-time path: verdict assembly walks the whole
    /// store). Errors propagate before any state is lost.
    pub fn unspill_all(&mut self) -> StoreResult<usize> {
        let keys: Vec<Key> = {
            let mut k: Vec<Key> = self.spilled_counts.keys().copied().collect();
            k.sort_unstable();
            k
        };
        let n = keys.len();
        for key in keys {
            self.ensure_resident(key)?;
        }
        Ok(n)
    }

    /// The spill index as plain data for the incremental checkpoint:
    /// every paged-out record with its durable address and version count.
    /// Sorted by key (byte-stable).
    #[must_use]
    pub fn spill_index(&self) -> Vec<SpillIndexEntry> {
        let Some(tier) = &self.spill else {
            return Vec::new();
        };
        tier.index_snapshot()
            .into_iter()
            .map(|(key, addr)| SpillIndexEntry {
                key,
                versions: self.spilled_counts.get(&key).copied().unwrap_or(0) as u64,
                addr,
            })
            .collect()
    }

    /// Resume path: attaches `tier` and adopts a checkpointed spill
    /// index. The spilled versions are added back into the footprint
    /// totals without reading the records.
    pub fn adopt_spill(&mut self, tier: SpillTier, index: &[SpillIndexEntry]) {
        tier.adopt_index(
            &index
                .iter()
                .map(|e| (e.key, e.addr))
                .collect::<Vec<(Key, RecordAddr)>>(),
        );
        self.spilled_counts = index.iter().map(|e| (e.key, e.versions as usize)).collect();
        self.spilled_total = index.iter().map(|e| e.versions as usize).sum();
        self.total += self.spilled_total;
        self.spill = Some(tier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    /// Installs a committed version in one step (writer snapshot taken to
    /// be the write interval itself, which suffices for these tests).
    fn put(store: &mut VersionStore, key: u64, value: u64, txn: u64, w: (u64, u64), c: (u64, u64)) {
        store.install(
            Key(key),
            Value(value),
            TxnId(txn),
            iv(w.0, w.1),
            iv(w.0, w.1),
        );
        store.commit(TxnId(txn), &[Key(key)], iv(c.0, c.1));
    }

    #[test]
    fn classification_matches_figure_6() {
        let mut store = VersionStore::default();
        // Snapshot interval (100, 110). Versions around it:
        put(&mut store, 1, 10, 1, (10, 11), (20, 30)); // garbage
        put(&mut store, 1, 20, 2, (31, 32), (40, 60)); // pivot-overlap (overlaps pivot)
        put(&mut store, 1, 30, 3, (33, 34), (50, 70)); // pivot (latest past)
        put(&mut store, 1, 40, 4, (90, 95), (95, 105)); // overlap
        put(&mut store, 1, 50, 5, (115, 116), (120, 130)); // future
        let rec = store.record(Key(1)).unwrap();
        let classes = rec.classify(&iv(100, 110));
        assert_eq!(
            classes,
            vec![
                VersionClass::Garbage,
                VersionClass::PivotOverlap,
                VersionClass::Pivot,
                VersionClass::Overlap,
                VersionClass::Future,
            ]
        );
    }

    #[test]
    fn pending_versions_are_invisible() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        store.install(Key(1), Value(9), TxnId(5), iv(10, 12), iv(10, 12));
        // Reader with snapshot after the pending install must still see the
        // initial value, not the uncommitted 9.
        match store.check_read(Key(1), Value(0), &iv(20, 21), true) {
            ReadMatch::Unique { writer, .. } => assert_eq!(writer, TxnId::INITIAL),
            other => panic!("expected unique initial match, got {other:?}"),
        }
        // Observing the pending value is a dirty read -> violation.
        assert!(matches!(
            store.check_read(Key(1), Value(9), &iv(20, 21), true),
            ReadMatch::Violation { .. }
        ));
    }

    #[test]
    fn future_versions_are_invisible() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 7, 2, (50, 51), (60, 61));
        // Snapshot (10, 20) precedes the commit: reading 7 is a violation.
        assert!(matches!(
            store.check_read(Key(1), Value(7), &iv(10, 20), true),
            ReadMatch::Violation { .. }
        ));
        assert!(matches!(
            store.check_read(Key(1), Value(0), &iv(10, 20), true),
            ReadMatch::Unique { .. }
        ));
    }

    #[test]
    fn garbage_versions_are_invisible_in_minimal_mode() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0)); // garbage once overwritten
        put(&mut store, 1, 5, 2, (10, 11), (12, 13)); // pivot for late snapshots
                                                      // Snapshot far later: initial value must not be visible.
        assert!(matches!(
            store.check_read(Key(1), Value(0), &iv(100, 101), true),
            ReadMatch::Violation { .. }
        ));
        // Non-minimal (ablation) candidate set admits stale reads.
        assert!(matches!(
            store.check_read(Key(1), Value(0), &iv(100, 101), false),
            ReadMatch::Unique { .. }
        ));
    }

    #[test]
    fn overlap_version_possibly_visible() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 5, 2, (95, 105), (95, 105)); // overlaps snapshot
        for value in [0u64, 5] {
            assert!(
                matches!(
                    store.check_read(Key(1), Value(value), &iv(100, 110), true),
                    ReadMatch::Unique { .. }
                ),
                "value {value} should be possibly visible"
            );
        }
    }

    #[test]
    fn duplicate_values_are_ambiguous() {
        let mut store = VersionStore::default();
        put(&mut store, 1, 42, 2, (10, 11), (12, 13));
        put(&mut store, 1, 42, 3, (95, 96), (99, 104)); // overlap with snapshot
        match store.check_read(Key(1), Value(42), &iv(100, 110), true) {
            ReadMatch::Ambiguous { matches } => assert_eq!(matches, 2),
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn interval_certain_only_with_single_candidate() {
        let mut store = VersionStore::default();
        put(&mut store, 1, 1, 2, (10, 11), (12, 13)); // pivot, only candidate
        match store.check_read(Key(1), Value(1), &iv(100, 110), true) {
            ReadMatch::Unique {
                interval_certain, ..
            } => assert!(interval_certain),
            other => panic!("{other:?}"),
        }
        put(&mut store, 1, 2, 3, (95, 96), (99, 104)); // adds an overlap candidate
        match store.check_read(Key(1), Value(1), &iv(100, 110), true) {
            ReadMatch::Unique {
                interval_certain, ..
            } => assert!(!interval_certain),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abort_discards_pending_versions() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        store.install(Key(1), Value(9), TxnId(5), iv(10, 12), iv(10, 12));
        store.abort(TxnId(5), &[Key(1)]);
        assert_eq!(store.record(Key(1)).unwrap().entries().len(), 1);
        assert_eq!(store.version_count(), 1);
    }

    #[test]
    fn committed_adjacency_finds_direct_predecessor() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 5, 2, (10, 11), (12, 13));
        store.install(Key(1), Value(7), TxnId(3), iv(20, 21), iv(20, 21)); // pending: skipped
        put(&mut store, 1, 9, 4, (30, 31), (32, 33));
        let (pred, succ) = store.committed_adjacency(Key(1), TxnId(4)).unwrap();
        assert_eq!(pred.txn, TxnId(2));
        assert_eq!(succ.txn, TxnId(4));
    }

    #[test]
    fn prune_keeps_latest_old_version_as_pivot() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 1, 2, (10, 11), (12, 13));
        put(&mut store, 1, 2, 3, (20, 21), (22, 23));
        put(&mut store, 1, 3, 4, (90, 91), (92, 93));
        let removed = store.prune(Timestamp(50));
        assert_eq!(removed.versions, 2); // initial + value 1 dropped
        assert_eq!(removed.records, 0);
        let rec = store.record(Key(1)).unwrap();
        assert_eq!(rec.entries().len(), 2);
        assert_eq!(rec.entries()[0].value, Value(2)); // surviving pivot
                                                      // Reads with recent snapshots still verify correctly.
        assert!(matches!(
            store.check_read(Key(1), Value(3), &iv(100, 110), true),
            ReadMatch::Unique { .. }
        ));
        assert!(matches!(
            store.check_read(Key(1), Value(0), &iv(100, 110), true),
            ReadMatch::Violation { .. }
        ));
    }

    #[test]
    fn out_of_order_install_keeps_list_sorted() {
        let mut store = VersionStore::default();
        put(&mut store, 1, 2, 3, (20, 25), (26, 27));
        put(&mut store, 1, 1, 2, (10, 12), (13, 14)); // arrives late
        let rec = store.record(Key(1)).unwrap();
        let values: Vec<Value> = rec.entries().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![Value(1), Value(2)]);
    }

    #[test]
    fn never_written_key_is_violation() {
        let store = VersionStore::default();
        assert!(matches!(
            store.check_read(Key(99), Value(1), &iv(0, 1), true),
            ReadMatch::Violation { .. }
        ));
    }

    #[test]
    fn prune_exactly_at_watermark_boundary_keeps_boundary_version() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 1, 2, (10, 11), (12, 13));
        put(&mut store, 1, 2, 3, (20, 21), (22, 23));
        // low == vis.hi of value 2's version (23): `hi < low` is false, so
        // the boundary version is "recent" and must survive; value 1
        // (hi = 13 < 23) becomes the pivot and survives; only the initial
        // version is certainly before the pivot.
        let removed = store.prune(Timestamp(23));
        assert_eq!(
            removed,
            PruneBreakdown {
                versions: 1,
                records: 0
            }
        );
        let values: Vec<Value> = store
            .record(Key(1))
            .unwrap()
            .entries()
            .iter()
            .map(|e| e.value)
            .collect();
        assert_eq!(values, vec![Value(1), Value(2)]);
        // One past the boundary: now value 2 is old, becomes the pivot,
        // and value 1 is certainly before it.
        store.install(Key(1), Value(3), TxnId(9), iv(100, 101), iv(100, 101));
        store.commit(TxnId(9), &[Key(1)], iv(102, 103));
        let removed = store.prune(Timestamp(24));
        assert_eq!(removed.versions, 1);
        assert_eq!(store.record(Key(1)).unwrap().entries()[0].value, Value(2));
    }

    #[test]
    fn prune_is_idempotent_and_only_revisits_dirty_keys() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 1, 2, (10, 11), (12, 13));
        put(&mut store, 1, 2, 3, (20, 21), (22, 23));
        assert_eq!(store.prune(Timestamp(50)).versions, 2);
        // Nothing is dirty any more: a second pass with a higher horizon
        // must be a no-op until the key is touched again.
        assert_eq!(store.prune(Timestamp(500)).total(), 0);
        assert_eq!(store.version_count(), 1);
    }

    #[test]
    fn prune_drops_record_emptied_by_aborts() {
        let mut store = VersionStore::default();
        store.install(Key(7), Value(1), TxnId(2), iv(10, 11), iv(10, 11));
        store.abort(TxnId(2), &[Key(7)]);
        assert_eq!(store.record_count(), 1, "empty husk still in the map");
        let removed = store.prune(Timestamp(0));
        assert_eq!(
            removed,
            PruneBreakdown {
                versions: 0,
                records: 1
            }
        );
        assert_eq!(store.record_count(), 0);
        assert_eq!(store.version_count(), 0);
    }

    #[test]
    fn committed_adjacency_and_successor_survive_pruning() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        put(&mut store, 1, 1, 2, (10, 11), (12, 13));
        put(&mut store, 1, 2, 3, (20, 21), (22, 23));
        put(&mut store, 1, 3, 4, (90, 91), (92, 93));
        let pivot_uid = store
            .record(Key(1))
            .unwrap()
            .entries()
            .iter()
            .find(|e| e.value == Value(2))
            .unwrap()
            .uid;
        assert_eq!(store.prune(Timestamp(50)).versions, 2);
        // The pivot chain is intact: value 2 -> value 3 adjacency still
        // resolves for the surviving suffix of the version order.
        let succ = store.committed_successor(Key(1), pivot_uid).unwrap();
        assert_eq!(succ.value, Value(3));
        let (pred, succ) = store.committed_adjacency(Key(1), TxnId(4)).unwrap();
        assert_eq!(pred.txn, TxnId(3));
        assert_eq!(succ.txn, TxnId(4));
    }

    #[test]
    fn mem_usage_shrinks_after_prune() {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        for i in 0..20u64 {
            put(
                &mut store,
                1,
                i + 1,
                i + 2,
                (10 * i, 10 * i + 1),
                (10 * i + 2, 10 * i + 3),
            );
        }
        let before = store.mem_usage();
        assert_eq!(before.entries, 21);
        store.prune(Timestamp(1_000));
        let after = store.mem_usage();
        assert!(after.bytes < before.bytes);
        assert_eq!(after.entries as usize, store.version_count());
    }
}
