//! History preflight: static analysis of a captured history *before*
//! verification (level 2 of the repo's static-analysis story).
//!
//! A verifier's verdict is only meaningful if its input history is
//! well-formed: Elle is explicit that checkers silently mis-verify when the
//! unique-writes assumption or session well-formedness is broken, and Vbox
//! front-loads the same kind of validity checks before certifying. This
//! module mirrors that discipline for Leopard. It streams over a capture and
//! emits structured [`Diagnostic`]s, each tagged with a stable code:
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | H001 | error    | interval is inverted (`ts_bef > ts_aft`) |
//! | H002 | error    | per-client `ts_bef` went backwards (Theorem 1 precondition) |
//! | H003 | error/warning | duplicate terminal op (error) / transaction never terminated (warning) |
//! | H004 | error    | operation observed after the transaction's commit/abort |
//! | H005 | warning  | unique-writes assumption broken: same `(key, value)` installed twice |
//! | H006 | error    | a read observed a `(key, value)` that nothing ever wrote or preloaded |
//!
//! Severity semantics: an **error** means verification verdicts on this
//! history are untrustworthy (the capture pipeline or clock is broken); a
//! **warning** means verdicts may be ambiguous (e.g. H005 arises legitimately
//! from workloads that install constant values, like SmallBank's
//! `amalgamate`, and merely widens candidate sets — the paper's Fig. 13
//! deduction ambiguity).
//!
//! The analyzer follows the same streaming shape as [`crate::verify::Verifier`]:
//! `preload` initial state, `observe` each trace in dispatch order, `finish`
//! for the report. H006 is deferred to `finish` so that a write whose trace
//! appears later in the stream (legal under interval overlap) still
//! justifies an earlier read.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::trace::{OpKind, Trace};
use crate::types::{ClientId, Key, Timestamp, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes for history preflight findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum DiagCode {
    /// Inverted interval: `ts_bef > ts_aft`.
    H001,
    /// Per-client timestamp monotonicity violated.
    H002,
    /// Duplicate or missing terminal operation.
    H003,
    /// Operation after the transaction terminated.
    H004,
    /// Unique-writes assumption broken.
    H005,
    /// Read observed a never-written value.
    H006,
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// How bad a diagnostic is for downstream verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Verification verdicts may be ambiguous but are not invalidated.
    Warning,
    /// Verification verdicts on this history cannot be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One preflight finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (`H001`..`H006`).
    pub code: DiagCode,
    /// Whether verification can proceed meaningfully.
    pub severity: Severity,
    /// The transaction the offending trace belongs to.
    pub txn: TxnId,
    /// 1-based position of the offending trace in the dispatched stream
    /// (line `op + 1` of a capture file, after the header).
    pub op: usize,
    /// Human-readable explanation with the concrete evidence.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] op #{} {}: {}",
            self.code, self.severity, self.op, self.txn, self.message
        )
    }
}

/// Tuning knobs for the preflight analyzer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreflightConfig {
    /// Stop recording after this many diagnostics (the stream is still
    /// consumed; the report notes truncation). Guards against a hopelessly
    /// broken capture producing one diagnostic per line.
    pub max_diagnostics: usize,
}

impl Default for PreflightConfig {
    fn default() -> PreflightConfig {
        PreflightConfig {
            max_diagnostics: 1000,
        }
    }
}

/// Outcome of a preflight pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PreflightReport {
    /// Findings in stream order (H003-missing and H006 findings, which are
    /// only decidable at end of stream, come last).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of traces analyzed.
    pub traces: usize,
    /// Number of distinct transactions observed.
    pub txns: usize,
    /// `true` if `max_diagnostics` was hit and findings were dropped.
    pub truncated: bool,
}

impl PreflightReport {
    /// `true` when no diagnostics of any severity were produced.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && !self.truncated
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when the history is too broken for verification verdicts to
    /// be trusted (any error-severity diagnostic).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Diagnostics bearing a specific code.
    pub fn with_code(&self, code: DiagCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }
}

impl fmt::Display for PreflightReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "preflight: clean ({} traces, {} txns)",
                self.traces, self.txns
            );
        }
        writeln!(
            f,
            "preflight: {} error(s), {} warning(s) over {} traces, {} txns{}",
            self.error_count(),
            self.warning_count(),
            self.traces,
            self.txns,
            if self.truncated { " (truncated)" } else { "" }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Per-transaction bookkeeping.
#[derive(Debug)]
struct TxnState {
    /// Position of the terminal op, if one was seen, and whether it was a
    /// commit (`true`) or abort.
    terminal: Option<(usize, bool)>,
}

/// Streaming preflight analyzer. See the module docs for the checks.
#[derive(Debug, Default)]
pub struct PreflightAnalyzer {
    config: PreflightConfig,
    seq: usize,
    dropped: bool,
    diags: Vec<Diagnostic>,
    /// Last `ts_bef` seen per client, with the position that set it.
    client_clock: FxHashMap<ClientId, (Timestamp, usize)>,
    txns: FxHashMap<TxnId, TxnState>,
    /// `(key, value)` pairs installed by writes, with the installing txn.
    installed: FxHashMap<(Key, Value), TxnId>,
    /// Preloaded initial state.
    preloaded: FxHashSet<(Key, Value)>,
    /// Reads not yet justified by a write or preload; re-checked at finish.
    pending_reads: Vec<(TxnId, usize, Key, Value)>,
}

impl PreflightAnalyzer {
    /// New analyzer with the given configuration.
    #[must_use]
    pub fn new(config: PreflightConfig) -> PreflightAnalyzer {
        PreflightAnalyzer {
            config,
            ..PreflightAnalyzer::default()
        }
    }

    /// Registers one initial `(key, value)` pair (mirrors
    /// [`crate::verify::Verifier::preload`]).
    pub fn preload(&mut self, key: Key, value: Value) {
        self.preloaded.insert((key, value));
    }

    fn emit(&mut self, code: DiagCode, severity: Severity, txn: TxnId, op: usize, message: String) {
        if self.diags.len() >= self.config.max_diagnostics {
            self.dropped = true;
            return;
        }
        self.diags.push(Diagnostic {
            code,
            severity,
            txn,
            op,
            message,
        });
    }

    /// Analyzes the next trace of the dispatched stream.
    pub fn observe(&mut self, trace: &Trace) {
        self.seq += 1;
        let seq = self.seq;
        let txn = trace.txn;

        // H001: interval sanity. `Interval::new` normalizes inverted bounds,
        // but deserialized captures bypass it, so raw field order is checked.
        if trace.interval.lo > trace.interval.hi {
            self.emit(
                DiagCode::H001,
                Severity::Error,
                txn,
                seq,
                format!(
                    "inverted interval: ts_bef {} > ts_aft {}",
                    trace.interval.lo.0, trace.interval.hi.0
                ),
            );
        }

        // H002: per-client ts_bef monotonicity (pipeline Theorem 1
        // precondition — same comparison as `TwoLevelPipeline::push`).
        match self.client_clock.get(&trace.client) {
            Some(&(last, at)) if trace.ts_bef() < last => {
                self.emit(
                    DiagCode::H002,
                    Severity::Error,
                    txn,
                    seq,
                    format!(
                        "client {} ts_bef {} went backwards (op #{at} had {})",
                        trace.client.0,
                        trace.ts_bef().0,
                        last.0
                    ),
                );
            }
            _ => {
                self.client_clock
                    .insert(trace.client, (trace.ts_bef(), seq));
            }
        }

        // H003 (duplicate) / H004 (op after terminal).
        let state = self.txns.entry(txn).or_insert(TxnState { terminal: None });
        match (&trace.op, state.terminal) {
            (OpKind::Commit | OpKind::Abort, Some((at, was_commit))) => {
                let dup = trace.op.tag();
                let prev = if was_commit { "c" } else { "a" };
                self.emit(
                    DiagCode::H003,
                    Severity::Error,
                    txn,
                    seq,
                    format!(
                        "duplicate terminal `{dup}` (already terminated with `{prev}` at op #{at})"
                    ),
                );
            }
            (OpKind::Commit, None) => state.terminal = Some((seq, true)),
            (OpKind::Abort, None) => state.terminal = Some((seq, false)),
            (_, Some((at, was_commit))) => {
                let tag = trace.op.tag();
                let prev = if was_commit { "commit" } else { "abort" };
                self.emit(
                    DiagCode::H004,
                    Severity::Error,
                    txn,
                    seq,
                    format!("`{tag}` operation after the transaction's {prev} (op #{at})"),
                );
            }
            (_, None) => {}
        }

        // H005 (unique writes) / H006 (reads, deferred).
        match &trace.op {
            OpKind::Write(set) => {
                for &(key, value) in set {
                    if let Some(&owner) = self.installed.get(&(key, value)) {
                        self.emit(
                            DiagCode::H005,
                            Severity::Warning,
                            txn,
                            seq,
                            format!(
                                "{key}={value} installed twice (first by {owner}); \
                                 unique-writes assumption broken, deduction may be ambiguous"
                            ),
                        );
                    } else {
                        self.installed.insert((key, value), txn);
                    }
                }
            }
            OpKind::Read(set) | OpKind::LockedRead(set) => {
                for &(key, value) in set {
                    if !self.preloaded.contains(&(key, value))
                        && !self.installed.contains_key(&(key, value))
                    {
                        self.pending_reads.push((txn, seq, key, value));
                    }
                }
            }
            OpKind::Commit | OpKind::Abort => {}
        }
    }

    /// Ends the stream: settles deferred H006 checks and H003 missing
    /// terminals, and returns the report.
    #[must_use]
    pub fn finish(mut self) -> PreflightReport {
        // H006: a read is justified by any write anywhere in the stream or
        // by preloaded state; anything else observed a phantom value.
        let pending = std::mem::take(&mut self.pending_reads);
        for (txn, seq, key, value) in pending {
            if !self.installed.contains_key(&(key, value)) {
                self.emit(
                    DiagCode::H006,
                    Severity::Error,
                    txn,
                    seq,
                    format!(
                        "read observed {key}={value}, which no write installed and \
                         the preload does not contain"
                    ),
                );
            }
        }

        // H003 (missing terminal): common in truncated captures; verdicts
        // stay sound (open txns never install versions) but coverage drops,
        // so this is a warning.
        let mut open: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, s)| s.terminal.is_none())
            .map(|(&id, _)| id)
            .collect();
        open.sort_unstable();
        for txn in open {
            self.emit(
                DiagCode::H003,
                Severity::Warning,
                txn,
                self.seq,
                "transaction never terminated (no commit/abort in the capture)".to_string(),
            );
        }

        PreflightReport {
            traces: self.seq,
            txns: self.txns.len(),
            truncated: self.dropped,
            diagnostics: std::mem::take(&mut self.diags),
        }
    }

    /// Convenience: runs a full pass over an in-memory history.
    #[must_use]
    pub fn analyze<'a>(
        config: PreflightConfig,
        preload: impl IntoIterator<Item = (Key, Value)>,
        traces: impl IntoIterator<Item = &'a Trace>,
    ) -> PreflightReport {
        let mut analyzer = PreflightAnalyzer::new(config);
        for (k, v) in preload {
            analyzer.preload(k, v);
        }
        for t in traces {
            analyzer.observe(t);
        }
        analyzer.finish()
    }
}

/// Streaming quarantine gate for degraded-mode verification.
///
/// Where [`PreflightAnalyzer`] produces a report *about* a whole capture,
/// the gate makes a per-trace admit/quarantine decision *inline*, so the
/// verifier can keep running over a partially broken stream. It applies the
/// checks that are decidable trace-by-trace — H001 (inverted interval),
/// H002 (per-client `ts_bef` regression), H003 (duplicate terminal) and
/// H004 (operation after terminal) — and returns the [`Diagnostic`]
/// explaining why a trace was quarantined. Stream-global checks (H005,
/// H006) stay in the preflight analyzer: they describe ambiguity, not a
/// trace that must be kept away from the mirrored state.
///
/// The gate's state is part of the verifier checkpoint, so a resumed run
/// makes identical decisions.
#[derive(Debug, Default)]
pub struct QuarantineGate {
    seq: usize,
    /// Last admitted `ts_bef` per client.
    client_clock: FxHashMap<ClientId, Timestamp>,
    /// Transactions whose terminal trace has been admitted.
    terminated: FxHashSet<TxnId>,
}

impl QuarantineGate {
    /// Decides on the next trace: `None` admits it, `Some(diag)` means it
    /// must be quarantined (not fed to the verifier).
    pub fn admit(&mut self, trace: &Trace) -> Option<Diagnostic> {
        self.seq += 1;
        let seq = self.seq;
        let txn = trace.txn;
        let diag = |code, message| {
            Some(Diagnostic {
                code,
                severity: Severity::Error,
                txn,
                op: seq,
                message,
            })
        };

        if trace.interval.lo > trace.interval.hi {
            return diag(
                DiagCode::H001,
                format!(
                    "inverted interval: ts_bef {} > ts_aft {}",
                    trace.interval.lo.0, trace.interval.hi.0
                ),
            );
        }
        if let Some(&last) = self.client_clock.get(&trace.client) {
            if trace.ts_bef() < last {
                return diag(
                    DiagCode::H002,
                    format!(
                        "client {} ts_bef {} went backwards (last admitted {})",
                        trace.client.0,
                        trace.ts_bef().0,
                        last.0
                    ),
                );
            }
        }
        let is_terminal = matches!(trace.op, OpKind::Commit | OpKind::Abort);
        if self.terminated.contains(&txn) {
            return if is_terminal {
                diag(
                    DiagCode::H003,
                    format!("duplicate terminal `{}`", trace.op.tag()),
                )
            } else {
                diag(
                    DiagCode::H004,
                    format!("`{}` operation after the terminal", trace.op.tag()),
                )
            };
        }
        if is_terminal {
            self.terminated.insert(txn);
        }
        self.client_clock.insert(trace.client, trace.ts_bef());
        None
    }

    /// Flattens the gate state for checkpointing: `(sequence counter,
    /// per-client clocks sorted by client, terminated txns sorted)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, Vec<(ClientId, Timestamp)>, Vec<TxnId>) {
        let mut clocks: Vec<(ClientId, Timestamp)> =
            self.client_clock.iter().map(|(&c, &t)| (c, t)).collect();
        clocks.sort_unstable_by_key(|&(c, _)| c);
        let mut terminated: Vec<TxnId> = self.terminated.iter().copied().collect();
        terminated.sort_unstable();
        (self.seq as u64, clocks, terminated)
    }

    /// Rebuilds a gate from [`QuarantineGate::snapshot`] output.
    #[must_use]
    pub fn restore(seq: u64, clocks: &[(ClientId, Timestamp)], terminated: &[TxnId]) -> Self {
        QuarantineGate {
            seq: seq as usize,
            client_clock: clocks.iter().copied().collect(),
            terminated: terminated.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::trace::TraceBuilder;

    fn run(traces: &[Trace]) -> PreflightReport {
        PreflightAnalyzer::analyze(PreflightConfig::default(), [(Key(1), Value(0))], traces)
    }

    fn codes(report: &PreflightReport) -> Vec<DiagCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    /// A well-formed two-txn history.
    fn clean_history() -> Vec<Trace> {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 42)]);
        b.commit(23, 25, 1, 2);
        b.build()
    }

    #[test]
    fn clean_history_has_no_diagnostics() {
        let report = run(&clean_history());
        assert!(report.is_clean(), "unexpected: {report}");
        assert_eq!(report.traces, 4);
        assert_eq!(report.txns, 2);
    }

    #[test]
    fn h001_inverted_interval() {
        let mut traces = clean_history();
        // Bypass Interval::new's normalization, as a malformed capture would.
        traces[0].interval = Interval {
            lo: Timestamp(12),
            hi: Timestamp(10),
        };
        let report = run(&traces);
        assert!(codes(&report).contains(&DiagCode::H001));
        assert!(report.has_errors());
    }

    #[test]
    fn h002_client_clock_goes_backwards() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(8, 9, 0, 1); // ts_bef jumped back on client 0
        let report = run(&b.build());
        let h002: Vec<_> = report.with_code(DiagCode::H002).collect();
        assert_eq!(h002.len(), 1);
        assert_eq!(h002[0].op, 2);
        assert_eq!(h002[0].txn, TxnId(1));
    }

    #[test]
    fn h003_duplicate_terminal_is_error() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(13, 15, 0, 1);
        b.abort(16, 17, 0, 1);
        let report = run(&b.build());
        let h003: Vec<_> = report.with_code(DiagCode::H003).collect();
        assert_eq!(h003.len(), 1);
        assert_eq!(h003[0].severity, Severity::Error);
    }

    #[test]
    fn h003_missing_terminal_is_warning() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        let report = run(&b.build());
        let h003: Vec<_> = report.with_code(DiagCode::H003).collect();
        assert_eq!(h003.len(), 1);
        assert_eq!(h003[0].severity, Severity::Warning);
        assert!(
            !report.has_errors(),
            "missing terminal must not gate verify"
        );
    }

    #[test]
    fn h004_operation_after_commit() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 0, 1, vec![(1, 42)]);
        let report = run(&b.build());
        let h004: Vec<_> = report.with_code(DiagCode::H004).collect();
        assert_eq!(h004.len(), 1);
        assert_eq!(h004[0].op, 3);
    }

    #[test]
    fn h005_duplicate_install_is_warning() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(13, 15, 0, 1);
        b.write(20, 22, 1, 2, vec![(1, 42)]); // same (key, value) again
        b.commit(23, 25, 1, 2);
        let report = run(&b.build());
        let h005: Vec<_> = report.with_code(DiagCode::H005).collect();
        assert_eq!(h005.len(), 1);
        assert_eq!(h005[0].severity, Severity::Warning);
        assert_eq!(h005[0].txn, TxnId(2));
        assert!(!report.has_errors());
    }

    #[test]
    fn h006_read_of_phantom_value() {
        let mut b = TraceBuilder::new();
        b.read(20, 22, 1, 2, vec![(1, 777)]); // 777 never written or preloaded
        b.commit(23, 25, 1, 2);
        let report = run(&b.build());
        let h006: Vec<_> = report.with_code(DiagCode::H006).collect();
        assert_eq!(h006.len(), 1);
        assert_eq!(h006[0].op, 1);
        assert!(report.has_errors());
    }

    #[test]
    fn h006_justified_by_later_overlapping_write() {
        // The read's trace lands in the stream before the write's trace
        // (overlapping intervals, smaller ts_bef) — still justified.
        let mut b = TraceBuilder::new();
        b.read(10, 30, 0, 1, vec![(1, 42)]);
        b.write(11, 13, 1, 2, vec![(1, 42)]);
        b.commit(14, 15, 1, 2);
        b.commit(31, 32, 0, 1);
        let report = run(&b.build());
        assert!(codes(&report).is_empty(), "unexpected: {report}");
    }

    #[test]
    fn preloaded_values_justify_reads() {
        let mut b = TraceBuilder::new();
        b.read(10, 12, 0, 1, vec![(1, 0)]); // preload has (k1, v0)
        b.commit(13, 14, 0, 1);
        let report = run(&b.build());
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn truncation_is_reported() {
        let mut b = TraceBuilder::new();
        for i in 0..10 {
            // ten independent phantom reads
            b.read(10 + i, 12 + i, 0, 1, vec![(90 + i, 900 + i)]);
        }
        b.commit(40, 41, 0, 1);
        let report =
            PreflightAnalyzer::analyze(PreflightConfig { max_diagnostics: 3 }, [], &b.build());
        assert_eq!(report.diagnostics.len(), 3);
        assert!(report.truncated);
        assert!(!report.is_clean());
    }

    #[test]
    fn diagnostics_serialize_to_json() {
        let mut traces = clean_history();
        traces[0].interval = Interval {
            lo: Timestamp(12),
            hi: Timestamp(10),
        };
        let report = run(&traces);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("\"H001\""), "json: {json}");
        let back: PreflightReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back.diagnostics, report.diagnostics);
    }
}
