//! Isolation levels, mechanism sets, and the commercial-DBMS catalog
//! (Fig. 1 of the paper).
//!
//! The key observation of the paper (§II-B) is that every isolation level
//! of every commercial DBMS the authors investigated is assembled from four
//! mechanisms: consistent read (CR), mutual exclusion (ME), first updater
//! wins (FUW) and a serialization certifier (SC). Verifying an isolation
//! level therefore reduces to verifying the mechanisms that implement it,
//! which is what [`MechanismSet`] configures.

use crate::report::Mechanism;
use serde::{Deserialize, Serialize};
use std::fmt;

/// ANSI-style isolation levels plus snapshot isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Read committed (RC).
    ReadCommitted,
    /// Repeatable read (RR).
    RepeatableRead,
    /// Snapshot isolation (SI).
    SnapshotIsolation,
    /// Serializable (SR).
    Serializable,
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::RepeatableRead => "RR",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::Serializable => "SR",
        };
        f.write_str(s)
    }
}

/// Whether consistent reads take their snapshot once per transaction or
/// once per statement (§II-B, §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SnapshotLevel {
    /// One snapshot at the first operation of the transaction
    /// (RR / SI / SR in MVCC systems).
    Transaction,
    /// A fresh snapshot at the start of every operation (RC).
    Statement,
}

/// The certifier rule the DBMS uses for its serializable level (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertifierRule {
    /// PostgreSQL-style serializable snapshot isolation: abort on a
    /// dangerous structure of two consecutive rw antidependencies among
    /// concurrent transactions.
    SsiDangerousStructure,
    /// CockroachDB-style multi-version timestamp ordering: no dependency
    /// may point from a newer-timestamped transaction to an older one.
    MvtoTimestampOrder,
    /// Plain conflict serializability: no cycle in the dependency graph.
    /// Detected incrementally; this is also what lock-only (2PL) systems
    /// guarantee, so it doubles as a cross-check for ME.
    AcyclicGraph,
}

/// Which mechanisms a DBMS's isolation level is built from, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismSet {
    /// Consistent read, with its snapshot granularity. `None` disables the
    /// CR check (pure-2PL systems such as SQLite serializable).
    pub consistent_read: Option<SnapshotLevel>,
    /// Mutual exclusion via write locks.
    pub mutual_exclusion: bool,
    /// First updater wins.
    pub first_updater_wins: bool,
    /// Serialization certifier rule, if any.
    pub certifier: Option<CertifierRule>,
}

impl MechanismSet {
    /// PostgreSQL-style assembly for a given level (the paper's default
    /// subject, Fig. 1 first row).
    #[must_use]
    pub fn postgres(level: IsolationLevel) -> MechanismSet {
        match level {
            IsolationLevel::ReadCommitted => MechanismSet {
                consistent_read: Some(SnapshotLevel::Statement),
                mutual_exclusion: true,
                first_updater_wins: false,
                certifier: None,
            },
            // PostgreSQL's "repeatable read" level is in fact snapshot
            // isolation; both get transaction snapshots + FUW.
            IsolationLevel::RepeatableRead | IsolationLevel::SnapshotIsolation => MechanismSet {
                consistent_read: Some(SnapshotLevel::Transaction),
                mutual_exclusion: true,
                first_updater_wins: true,
                certifier: None,
            },
            IsolationLevel::Serializable => MechanismSet {
                consistent_read: Some(SnapshotLevel::Transaction),
                mutual_exclusion: true,
                first_updater_wins: true,
                certifier: Some(CertifierRule::SsiDangerousStructure),
            },
        }
    }

    /// The mechanisms to verify, as report tags.
    #[must_use]
    pub fn active_mechanisms(&self) -> Vec<Mechanism> {
        let mut v = Vec::with_capacity(4);
        if self.consistent_read.is_some() {
            v.push(Mechanism::ConsistentRead);
        }
        if self.mutual_exclusion {
            v.push(Mechanism::MutualExclusion);
        }
        if self.first_updater_wins {
            v.push(Mechanism::FirstUpdaterWins);
        }
        if self.certifier.is_some() {
            v.push(Mechanism::SerializationCertifier);
        }
        v
    }
}

/// One row of the paper's Fig. 1: a DBMS, the concurrency control it uses,
/// and the mechanism assembly of each isolation level it offers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbmsProfile {
    /// Product name.
    pub name: &'static str,
    /// Concurrency-control protocols the product combines.
    pub concurrency_control: &'static str,
    /// Isolation levels and their mechanism sets.
    pub levels: Vec<(IsolationLevel, MechanismSet)>,
}

impl DbmsProfile {
    /// Looks up the mechanism set for one isolation level.
    #[must_use]
    pub fn mechanisms_for(&self, level: IsolationLevel) -> Option<MechanismSet> {
        self.levels
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, m)| *m)
    }
}

fn set(cr: Option<SnapshotLevel>, me: bool, fuw: bool, sc: Option<CertifierRule>) -> MechanismSet {
    MechanismSet {
        consistent_read: cr,
        mutual_exclusion: me,
        first_updater_wins: fuw,
        certifier: sc,
    }
}

/// The catalog of Fig. 1: isolation-level implementations of the commercial
/// DBMSs the paper investigated.
#[must_use]
pub fn catalog() -> Vec<DbmsProfile> {
    use CertifierRule::*;
    use IsolationLevel::*;
    use SnapshotLevel::*;
    vec![
        DbmsProfile {
            name: "PostgreSQL / openGauss",
            concurrency_control: "2PL+MVCC+SSI",
            levels: vec![
                (
                    Serializable,
                    set(Some(Transaction), true, true, Some(SsiDangerousStructure)),
                ),
                (SnapshotIsolation, set(Some(Transaction), true, true, None)),
                (RepeatableRead, set(Some(Transaction), true, true, None)),
                (ReadCommitted, set(Some(Statement), true, false, None)),
            ],
        },
        DbmsProfile {
            name: "InnoDB / Aurora / PolarDB / SQL Server",
            concurrency_control: "2PL+MVCC",
            levels: vec![
                (Serializable, set(Some(Transaction), true, false, None)),
                (RepeatableRead, set(Some(Transaction), true, false, None)),
                (ReadCommitted, set(Some(Statement), true, false, None)),
            ],
        },
        DbmsProfile {
            name: "TiDB (pessimistic)",
            concurrency_control: "2PL+MVCC",
            levels: vec![
                (RepeatableRead, set(Some(Transaction), true, false, None)),
                (ReadCommitted, set(Some(Statement), true, false, None)),
            ],
        },
        DbmsProfile {
            name: "TiDB (Percolator)",
            concurrency_control: "Percolator",
            levels: vec![(
                SnapshotIsolation,
                set(Some(Transaction), false, false, Some(AcyclicGraph)),
            )],
        },
        DbmsProfile {
            name: "RocksDB (pessimistic)",
            concurrency_control: "2PL+MVCC",
            levels: vec![(Serializable, set(Some(Transaction), true, false, None))],
        },
        DbmsProfile {
            name: "RocksDB (optimistic)",
            concurrency_control: "OCC+MVCC",
            levels: vec![(
                Serializable,
                set(Some(Transaction), false, false, Some(AcyclicGraph)),
            )],
        },
        DbmsProfile {
            name: "SQLite",
            concurrency_control: "2PL",
            levels: vec![(Serializable, set(None, true, false, None))],
        },
        DbmsProfile {
            name: "FoundationDB",
            concurrency_control: "OCC+MVCC",
            levels: vec![(
                Serializable,
                set(Some(Transaction), false, false, Some(AcyclicGraph)),
            )],
        },
        DbmsProfile {
            name: "SingleStore",
            concurrency_control: "2PL+MVCC",
            levels: vec![(ReadCommitted, set(Some(Statement), true, false, None))],
        },
        DbmsProfile {
            name: "CockroachDB",
            concurrency_control: "TO+MVCC",
            levels: vec![(
                Serializable,
                set(Some(Transaction), false, false, Some(MvtoTimestampOrder)),
            )],
        },
        DbmsProfile {
            name: "Spanner",
            concurrency_control: "2PL+MVCC",
            levels: vec![(Serializable, set(Some(Transaction), true, false, None))],
        },
        DbmsProfile {
            name: "YugabyteDB",
            concurrency_control: "2PL+MVCC",
            levels: vec![
                (
                    Serializable,
                    set(Some(Transaction), true, true, Some(SsiDangerousStructure)),
                ),
                (RepeatableRead, set(Some(Transaction), true, true, None)),
                (ReadCommitted, set(Some(Statement), true, false, None)),
            ],
        },
        DbmsProfile {
            name: "Oracle / NuoDB / SAP HANA",
            concurrency_control: "2PL+MVCC",
            levels: vec![
                (SnapshotIsolation, set(Some(Transaction), true, true, None)),
                (ReadCommitted, set(Some(Statement), true, false, None)),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postgres_serializable_uses_all_four() {
        let m = MechanismSet::postgres(IsolationLevel::Serializable);
        assert_eq!(m.active_mechanisms().len(), 4);
        assert_eq!(m.certifier, Some(CertifierRule::SsiDangerousStructure));
    }

    #[test]
    fn postgres_rc_is_statement_level_no_fuw() {
        let m = MechanismSet::postgres(IsolationLevel::ReadCommitted);
        assert_eq!(m.consistent_read, Some(SnapshotLevel::Statement));
        assert!(!m.first_updater_wins);
        assert!(m.certifier.is_none());
    }

    #[test]
    fn postgres_rr_equals_si() {
        assert_eq!(
            MechanismSet::postgres(IsolationLevel::RepeatableRead),
            MechanismSet::postgres(IsolationLevel::SnapshotIsolation)
        );
    }

    #[test]
    fn catalog_matches_figure_1_highlights() {
        let cat = catalog();
        let pg = cat
            .iter()
            .find(|p| p.name.starts_with("PostgreSQL"))
            .unwrap();
        let sr = pg.mechanisms_for(IsolationLevel::Serializable).unwrap();
        assert_eq!(sr.active_mechanisms().len(), 4);

        let crdb = cat.iter().find(|p| p.name == "CockroachDB").unwrap();
        let sr = crdb.mechanisms_for(IsolationLevel::Serializable).unwrap();
        assert!(!sr.mutual_exclusion);
        assert_eq!(sr.certifier, Some(CertifierRule::MvtoTimestampOrder));

        let sqlite = cat.iter().find(|p| p.name == "SQLite").unwrap();
        let sr = sqlite.mechanisms_for(IsolationLevel::Serializable).unwrap();
        assert!(sr.consistent_read.is_none());
        assert!(sr.mutual_exclusion);
    }

    #[test]
    fn mechanisms_for_missing_level_is_none() {
        let cat = catalog();
        let sqlite = cat.iter().find(|p| p.name == "SQLite").unwrap();
        assert!(sqlite
            .mechanisms_for(IsolationLevel::ReadCommitted)
            .is_none());
    }
}
