//! Trace capture files: streaming JSONL persistence for offline audits.
//!
//! A capture file holds one JSON object per line: a header describing the
//! initial database state, followed by every trace in dispatch order.
//! This is the hand-off format between a production trace collector and
//! an offline Leopard audit — the whole input the verifier ever needs.

use crate::trace::Trace;
use crate::types::{Key, Value};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// First line of a capture file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureHeader {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Free-form description of the workload / DBMS under test.
    pub description: String,
    /// Initial database contents (what `Verifier::preload` needs).
    pub preload: Vec<(Key, Value)>,
}

/// Current capture format version.
pub const CAPTURE_VERSION: u32 = 1;

/// Errors from reading or writing capture files.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line was not valid JSON for the expected record type.
    Format {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The file is empty or starts with something other than a header.
    MissingHeader,
    /// The header's version is not supported.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture i/o error: {e}"),
            CaptureError::Format { line, message } => {
                write!(f, "capture format error at line {line}: {message}")
            }
            CaptureError::MissingHeader => f.write_str("capture file has no header line"),
            CaptureError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported capture version {v} (supported: {CAPTURE_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<std::io::Error> for CaptureError {
    fn from(e: std::io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Streaming writer: header first, then one trace per line.
#[derive(Debug)]
pub struct CaptureWriter<W: Write> {
    out: BufWriter<W>,
    traces_written: u64,
}

impl<W: Write> CaptureWriter<W> {
    /// Creates a writer and emits the header line.
    pub fn new(sink: W, header: &CaptureHeader) -> Result<CaptureWriter<W>, CaptureError> {
        let mut out = BufWriter::new(sink);
        serde_json::to_writer(&mut out, header).map_err(|e| CaptureError::Format {
            line: 1,
            message: e.to_string(),
        })?;
        out.write_all(b"\n")?;
        Ok(CaptureWriter {
            out,
            traces_written: 0,
        })
    }

    /// Appends one trace.
    pub fn write(&mut self, trace: &Trace) -> Result<(), CaptureError> {
        serde_json::to_writer(&mut self.out, trace).map_err(|e| CaptureError::Format {
            line: self.traces_written as usize + 2,
            message: e.to_string(),
        })?;
        self.out.write_all(b"\n")?;
        self.traces_written += 1;
        Ok(())
    }

    /// Flushes and returns the number of traces written.
    pub fn finish(mut self) -> Result<u64, CaptureError> {
        self.out.flush()?;
        Ok(self.traces_written)
    }
}

/// Streaming reader: yields traces one by one after parsing the header.
#[derive(Debug)]
pub struct CaptureReader<R: Read> {
    input: BufReader<R>,
    header: CaptureHeader,
    line: usize,
    buf: String,
}

impl<R: Read> CaptureReader<R> {
    /// Opens a capture stream, parsing and validating the header.
    pub fn new(source: R) -> Result<CaptureReader<R>, CaptureError> {
        let mut input = BufReader::new(source);
        let mut first = String::new();
        if input.read_line(&mut first)? == 0 {
            return Err(CaptureError::MissingHeader);
        }
        let header: CaptureHeader =
            serde_json::from_str(first.trim_end()).map_err(|e| CaptureError::Format {
                line: 1,
                message: e.to_string(),
            })?;
        if header.version != CAPTURE_VERSION {
            return Err(CaptureError::UnsupportedVersion(header.version));
        }
        Ok(CaptureReader {
            input,
            header,
            line: 1,
            buf: String::new(),
        })
    }

    /// The capture header.
    #[must_use]
    pub fn header(&self) -> &CaptureHeader {
        &self.header
    }

    /// Reads the next trace; `Ok(None)` at end of file.
    pub fn next_trace(&mut self) -> Result<Option<Trace>, CaptureError> {
        loop {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            let line = self.buf.trim_end();
            if line.is_empty() {
                continue; // tolerate trailing newlines
            }
            return serde_json::from_str(line)
                .map(Some)
                .map_err(|e| CaptureError::Format {
                    line: self.line,
                    message: e.to_string(),
                });
        }
    }
}

impl<R: Read> Iterator for CaptureReader<R> {
    type Item = Result<Trace, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_trace().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_header() -> CaptureHeader {
        CaptureHeader {
            version: CAPTURE_VERSION,
            description: "unit test".to_string(),
            preload: vec![(Key(1), Value(0)), (Key(2), Value(0))],
        }
    }

    fn sample_traces() -> Vec<Trace> {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 5)]);
        b.commit(23, 25, 1, 2);
        b.build_sorted()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let traces = sample_traces();
        let mut bytes = Vec::new();
        let mut w = CaptureWriter::new(&mut bytes, &sample_header()).unwrap();
        for t in &traces {
            w.write(t).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 4);

        let mut r = CaptureReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header(), &sample_header());
        let back: Vec<Trace> = (&mut r).map(|t| t.unwrap()).collect();
        assert_eq!(back, traces);
    }

    #[test]
    fn missing_header_is_reported() {
        let err = CaptureReader::new(&b""[..]).unwrap_err();
        assert!(matches!(err, CaptureError::MissingHeader));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let header = CaptureHeader {
            version: 99,
            ..sample_header()
        };
        let mut bytes = Vec::new();
        CaptureWriter::new(&mut bytes, &header)
            .unwrap()
            .finish()
            .unwrap();
        let err = CaptureReader::new(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, CaptureError::UnsupportedVersion(99)));
    }

    #[test]
    fn corrupt_line_reports_its_number() {
        let mut bytes = Vec::new();
        let mut w = CaptureWriter::new(&mut bytes, &sample_header()).unwrap();
        w.write(&sample_traces()[0]).unwrap();
        w.finish().unwrap();
        bytes.extend_from_slice(b"{not json}\n");
        let mut r = CaptureReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_trace().unwrap().is_some());
        match r.next_trace() {
            Err(CaptureError::Format { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_blank_lines_are_tolerated() {
        let mut bytes = Vec::new();
        let mut w = CaptureWriter::new(&mut bytes, &sample_header()).unwrap();
        w.write(&sample_traces()[0]).unwrap();
        w.finish().unwrap();
        bytes.extend_from_slice(b"\n\n");
        let mut r = CaptureReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_trace().unwrap().is_some());
        assert!(r.next_trace().unwrap().is_none());
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(CaptureError::MissingHeader.to_string().contains("header"));
        assert!(CaptureError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
    }
}
