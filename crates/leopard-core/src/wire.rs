//! Compact binary wire protocol for streaming interval traces into a
//! `leopard serve` daemon (DESIGN.md §12).
//!
//! The capture JSONL format ([`crate::capture`]) is the archival hand-off;
//! this module is the *live* hand-off: a length-prefixed binary framing
//! that a thin client-side shim can emit per operation with no JSON
//! machinery and a few bytes per trace. Layout of one frame:
//!
//! ```text
//! varint(payload_len) ‖ payload ‖ u32le checksum(payload)
//! ```
//!
//! where the checksum is the FxHash of the payload truncated to 32 bits
//! — enough to catch the torn/bit-flipped frames the chaos soak injects,
//! not a cryptographic MAC. The payload's first byte is a frame tag;
//! integers are LEB128 varints; `ts_aft` is a zigzag delta against
//! `ts_bef` (intervals are short, inverted ones — an ill-formedness the
//! verifier must be able to *see* — still round-trip via wrapping).
//!
//! Client→server frames: [`Hello`] (versioned handshake: stream name,
//! isolation level, per-stream [`MemBudget`](crate::budget::MemBudget)
//! byte request, preload image), [`TraceFrame`] (one sequenced trace),
//! `Bye` (total sent, requests the verdict). Server→client: `Ack`
//! (handshake accepted, resume cursor), `Reject` (typed refusal),
//! `Verdict` (final verdict JSON). Every decode failure is a typed
//! [`WireError`]; nothing panics on hostile input.

use crate::catalog::IsolationLevel;
use crate::interval::Interval;
use crate::trace::{OpKind, Trace};
use crate::types::{ClientId, Key, Timestamp, TxnId, Value};
use std::fmt;
use std::hash::Hasher as _;
use std::io::{Read, Write};

/// Wire protocol version carried in every [`Hello`]; the server rejects
/// anything else with [`RejectReason::Version`].
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on one frame's payload, enforced on both encode and
/// decode. A trace frame is tens of bytes; a `Hello` with a large
/// preload or a `Verdict` with a large report stays well under this.
/// Anything bigger is a corrupt length prefix, not a real frame.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Bytes of the trailing payload checksum.
const CHECKSUM_LEN: usize = 4;

/// Frame tags (first payload byte). Client→server tags are small,
/// server→client tags start at 16 so a confused peer fails fast.
const TAG_HELLO: u8 = 1;
const TAG_TRACE: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_ACK: u8 = 16;
const TAG_REJECT: u8 = 17;
const TAG_VERDICT: u8 = 18;

/// Why a frame (or stream of frames) could not be decoded.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file I/O failure.
    Io(std::io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: u64,
    },
    /// A varint ran past 10 bytes (more than 64 bits of payload).
    VarintOverflow,
    /// The payload checksum did not match — a torn or bit-flipped frame.
    Corrupt {
        /// Checksum recomputed from the payload.
        expected: u32,
        /// Checksum found on the wire.
        found: u32,
    },
    /// The frame tag is not part of the protocol.
    UnknownFrame(u8),
    /// A trace frame carried an operation tag outside `0..=4`.
    UnknownOp(u8),
    /// A hello frame carried an isolation-level byte outside `0..=3`.
    UnknownLevel(u8),
    /// A reject frame carried an unassigned reason byte.
    UnknownReason(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The payload had bytes left over after the frame was fully parsed
    /// — a framing bug or corruption the checksum happened to miss.
    Trailing {
        /// Number of undecoded payload bytes.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated => f.write_str("stream truncated mid-frame"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
            WireError::VarintOverflow => f.write_str("varint longer than 64 bits"),
            WireError::Corrupt { expected, found } => write!(
                f,
                "frame checksum mismatch (computed {expected:#010x}, wire {found:#010x})"
            ),
            WireError::UnknownFrame(t) => write!(f, "unknown frame tag {t}"),
            WireError::UnknownOp(t) => write!(f, "unknown trace operation tag {t}"),
            WireError::UnknownLevel(l) => write!(f, "unknown isolation-level byte {l}"),
            WireError::UnknownReason(r) => write!(f, "unknown reject-reason byte {r}"),
            WireError::BadUtf8 => f.write_str("string field is not valid utf-8"),
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after frame payload")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Why the server refused a handshake or aborted a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The client's [`WIRE_VERSION`] is not supported.
    Version,
    /// Global admission control: the shared budget has no room for the
    /// stream's requested slice.
    Admission,
    /// The stream sent an undecodable or out-of-sequence frame and was
    /// quarantined.
    Malformed,
    /// The server is draining and accepts no new streams.
    Draining,
    /// The stream's verifier panicked; the stream is quarantined into a
    /// degraded verdict.
    Quarantined,
}

impl RejectReason {
    fn to_byte(self) -> u8 {
        match self {
            RejectReason::Version => 1,
            RejectReason::Admission => 2,
            RejectReason::Malformed => 3,
            RejectReason::Draining => 4,
            RejectReason::Quarantined => 5,
        }
    }

    fn from_byte(b: u8) -> Result<RejectReason, WireError> {
        match b {
            1 => Ok(RejectReason::Version),
            2 => Ok(RejectReason::Admission),
            3 => Ok(RejectReason::Malformed),
            4 => Ok(RejectReason::Draining),
            5 => Ok(RejectReason::Quarantined),
            other => Err(WireError::UnknownReason(other)),
        }
    }

    /// Short lower-case label used in logs and stream listings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Version => "version",
            RejectReason::Admission => "admission",
            RejectReason::Malformed => "malformed",
            RejectReason::Draining => "draining",
            RejectReason::Quarantined => "quarantined",
        }
    }
}

/// The versioned handshake opening every stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client speaks ([`WIRE_VERSION`]).
    pub version: u32,
    /// Stream name — the tenant identity. Checkpoints and verdicts are
    /// keyed by it, and reconnecting under the same name resumes.
    pub stream: String,
    /// Free-form description of the workload / DBMS under test.
    pub description: String,
    /// Isolation level the stream claims and the verifier checks.
    pub level: IsolationLevel,
    /// Requested per-stream memory budget in bytes (0 = unlimited; the
    /// server may still charge a default slice against the global budget).
    pub mem_budget: u64,
    /// Initial database contents (what `Verifier::preload` needs).
    pub preload: Vec<(Key, Value)>,
}

/// One sequenced trace on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    /// 1-based position of this trace in the stream. The server ingests
    /// exactly the sequence `resume_from+1, resume_from+2, …`: duplicates
    /// (`seq` at or below the cursor) are dropped idempotently, gaps
    /// quarantine the stream. This is what makes reconnect-and-resume
    /// and chaos-duplicated frames safe.
    pub seq: u64,
    /// The trace itself.
    pub trace: Trace,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client→server: open (or resume) a stream.
    Hello(Hello),
    /// Client→server: one sequenced trace.
    Trace(TraceFrame),
    /// Client→server: end of stream; `traces_sent` is the highest `seq`
    /// the client emitted, cross-checked by the server before finishing.
    Bye {
        /// Highest sequence number the client sent.
        traces_sent: u64,
    },
    /// Server→client: handshake accepted. The client must skip traces
    /// with `seq <= resume_from` (already ingested before a reconnect).
    Ack {
        /// The server's ingest cursor for this stream.
        resume_from: u64,
    },
    /// Server→client: handshake refused or stream aborted.
    Reject {
        /// Typed refusal class.
        reason: RejectReason,
        /// Human-readable detail.
        message: String,
    },
    /// Server→client: the stream's final verdict document (the JSON
    /// serialization of [`crate::serve::StreamVerdict`]).
    Verdict {
        /// Verdict JSON.
        json: String,
    },
}

// ---------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------

/// Appends `v` to `out` as a LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign stay
/// short on the wire.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked cursor over one frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            if shift == 9 && byte > 1 {
                // The 10th byte can only contribute the final bit.
                return Err(WireError::VarintOverflow);
            }
            v |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.varint()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn kv_set(&mut self) -> Result<Vec<(Key, Value)>, WireError> {
        let n = self.varint()? as usize;
        // Bound the preallocation by what the payload could possibly
        // hold (2 bytes minimum per pair) so a lying count cannot OOM.
        let mut set = Vec::with_capacity(n.min(self.buf.len() / 2 + 1));
        for _ in 0..n {
            let k = self.varint()?;
            let v = self.varint()?;
            set.push((Key(k), Value(v)));
        }
        Ok(set)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_kv_set(out: &mut Vec<u8>, set: &[(Key, Value)]) {
    put_varint(out, set.len() as u64);
    for &(k, v) in set {
        put_varint(out, k.0);
        put_varint(out, v.0);
    }
}

fn level_to_byte(level: IsolationLevel) -> u8 {
    match level {
        IsolationLevel::ReadCommitted => 0,
        IsolationLevel::RepeatableRead => 1,
        IsolationLevel::SnapshotIsolation => 2,
        IsolationLevel::Serializable => 3,
    }
}

fn level_from_byte(b: u8) -> Result<IsolationLevel, WireError> {
    match b {
        0 => Ok(IsolationLevel::ReadCommitted),
        1 => Ok(IsolationLevel::RepeatableRead),
        2 => Ok(IsolationLevel::SnapshotIsolation),
        3 => Ok(IsolationLevel::Serializable),
        other => Err(WireError::UnknownLevel(other)),
    }
}

/// FxHash of `payload` truncated to 32 bits — the frame checksum.
#[must_use]
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h = crate::fxhash::FxHasher::default();
    h.write(payload);
    (h.finish() & 0xffff_ffff) as u32
}

impl Frame {
    /// Serializes the frame payload (tag byte onward, no length prefix or
    /// checksum).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Frame::Hello(h) => {
                out.push(TAG_HELLO);
                put_varint(&mut out, u64::from(h.version));
                out.push(level_to_byte(h.level));
                put_varint(&mut out, h.mem_budget);
                put_string(&mut out, &h.stream);
                put_string(&mut out, &h.description);
                put_kv_set(&mut out, &h.preload);
            }
            Frame::Trace(tf) => {
                out.push(TAG_TRACE);
                put_varint(&mut out, tf.seq);
                put_varint(&mut out, u64::from(tf.trace.client.0));
                put_varint(&mut out, tf.trace.txn.0);
                let lo = tf.trace.interval.lo.0;
                let hi = tf.trace.interval.hi.0;
                put_varint(&mut out, lo);
                put_varint(&mut out, zigzag(hi.wrapping_sub(lo) as i64));
                match &tf.trace.op {
                    OpKind::Read(set) => {
                        out.push(0);
                        put_kv_set(&mut out, set);
                    }
                    OpKind::LockedRead(set) => {
                        out.push(1);
                        put_kv_set(&mut out, set);
                    }
                    OpKind::Write(set) => {
                        out.push(2);
                        put_kv_set(&mut out, set);
                    }
                    OpKind::Commit => out.push(3),
                    OpKind::Abort => out.push(4),
                }
            }
            Frame::Bye { traces_sent } => {
                out.push(TAG_BYE);
                put_varint(&mut out, *traces_sent);
            }
            Frame::Ack { resume_from } => {
                out.push(TAG_ACK);
                put_varint(&mut out, *resume_from);
            }
            Frame::Reject { reason, message } => {
                out.push(TAG_REJECT);
                out.push(reason.to_byte());
                put_string(&mut out, message);
            }
            Frame::Verdict { json } => {
                out.push(TAG_VERDICT);
                put_string(&mut out, json);
            }
        }
        out
    }

    /// Serializes the complete framed bytes: length prefix, payload,
    /// checksum — what actually goes on the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        debug_assert!(payload.len() <= MAX_FRAME_LEN);
        let mut out = Vec::with_capacity(payload.len() + 8);
        put_varint(&mut out, payload.len() as u64);
        let sum = checksum(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses one frame payload (as produced by [`Frame::encode_payload`]).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cur::new(payload);
        let frame = match cur.u8()? {
            TAG_HELLO => {
                let version = cur.varint()?;
                if version > u64::from(u32::MAX) {
                    return Err(WireError::VarintOverflow);
                }
                let level = level_from_byte(cur.u8()?)?;
                let mem_budget = cur.varint()?;
                let stream = cur.string()?;
                let description = cur.string()?;
                let preload = cur.kv_set()?;
                Frame::Hello(Hello {
                    version: version as u32,
                    stream,
                    description,
                    level,
                    mem_budget,
                    preload,
                })
            }
            TAG_TRACE => {
                let seq = cur.varint()?;
                let client = cur.varint()?;
                let txn = cur.varint()?;
                let lo = cur.varint()?;
                let hi = lo.wrapping_add(unzigzag(cur.varint()?) as u64);
                let op = match cur.u8()? {
                    0 => OpKind::Read(cur.kv_set()?),
                    1 => OpKind::LockedRead(cur.kv_set()?),
                    2 => OpKind::Write(cur.kv_set()?),
                    3 => OpKind::Commit,
                    4 => OpKind::Abort,
                    other => return Err(WireError::UnknownOp(other)),
                };
                Frame::Trace(TraceFrame {
                    seq,
                    trace: Trace::new(
                        // Not Interval::new: that would silently swap
                        // inverted bounds, and the verifier must see the
                        // ill-formedness exactly as the client sent it.
                        Interval {
                            lo: Timestamp(lo),
                            hi: Timestamp(hi),
                        },
                        ClientId((client & 0xffff_ffff) as u32),
                        TxnId(txn),
                        op,
                    ),
                })
            }
            TAG_BYE => Frame::Bye {
                traces_sent: cur.varint()?,
            },
            TAG_ACK => Frame::Ack {
                resume_from: cur.varint()?,
            },
            TAG_REJECT => Frame::Reject {
                reason: RejectReason::from_byte(cur.u8()?)?,
                message: cur.string()?,
            },
            TAG_VERDICT => Frame::Verdict {
                json: cur.string()?,
            },
            other => return Err(WireError::UnknownFrame(other)),
        };
        cur.done()?;
        Ok(frame)
    }
}

/// Writes one framed message to `w` (no flush — callers batch).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.to_bytes())?;
    Ok(())
}

/// Reads one framed message from `r`, blocking. `Ok(None)` on clean EOF
/// at a frame boundary; [`WireError::Truncated`] on EOF mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    // Length prefix, byte by byte; EOF on the first byte is a clean end.
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if shift == 0 {
                    return Ok(None);
                }
                return Err(WireError::Truncated);
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(WireError::VarintOverflow);
        }
        len |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintOverflow);
        }
    }
    if len as usize > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let mut sum = [0u8; CHECKSUM_LEN];
    r.read_exact(&mut sum).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let found = u32::from_le_bytes(sum);
    let expected = checksum(&payload);
    if found != expected {
        return Err(WireError::Corrupt { expected, found });
    }
    Frame::decode_payload(&payload).map(Some)
}

/// An incremental frame decoder for non-blocking ingestion: feed raw
/// bytes with [`FrameDecoder::extend`], drain complete frames with
/// [`FrameDecoder::next_frame`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// New empty decoder.
    #[must_use]
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before growing, keeping the buffer
        // proportional to the unconsumed tail.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > MAX_FRAME_LEN {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame. `Ok(None)` means more bytes are
    /// needed. Errors are not recoverable: the stream position is
    /// ambiguous after a bad frame, so the caller must drop the
    /// connection (and, server-side, quarantine the stream).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let tail = &self.buf[self.pos..];
        // Decode the length prefix.
        let mut len: u64 = 0;
        let mut used = 0usize;
        loop {
            let Some(&b) = tail.get(used) else {
                // Prefix itself is incomplete; an absurdly long prefix is
                // still caught once its continuation bits keep coming.
                if used > 10 {
                    return Err(WireError::VarintOverflow);
                }
                return Ok(None);
            };
            if used == 9 && b > 1 {
                return Err(WireError::VarintOverflow);
            }
            len |= u64::from(b & 0x7f) << (used as u32 * 7);
            used += 1;
            if b & 0x80 == 0 {
                break;
            }
            if used >= 10 {
                return Err(WireError::VarintOverflow);
            }
        }
        if len as usize > MAX_FRAME_LEN {
            return Err(WireError::Oversized { len });
        }
        let frame_end = used + len as usize + CHECKSUM_LEN;
        if tail.len() < frame_end {
            return Ok(None);
        }
        let payload = &tail[used..used + len as usize];
        let sum_bytes = &tail[used + len as usize..frame_end];
        let found = u32::from_le_bytes([sum_bytes[0], sum_bytes[1], sum_bytes[2], sum_bytes[3]]);
        let expected = checksum(payload);
        if found != expected {
            return Err(WireError::Corrupt { expected, found });
        }
        let frame = Frame::decode_payload(payload)?;
        self.pos += frame_end;
        Ok(Some(frame))
    }

    /// Declares end of input: `Err(Truncated)` if a partial frame is
    /// still buffered.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buffered() == 0 {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_hello() -> Frame {
        Frame::Hello(Hello {
            version: WIRE_VERSION,
            stream: "tenant-a".to_string(),
            description: "unit test".to_string(),
            level: IsolationLevel::SnapshotIsolation,
            mem_budget: 1 << 20,
            preload: vec![(Key(1), Value(0)), (Key(300), Value(7))],
        })
    }

    fn sample_frames() -> Vec<Frame> {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 5), (300, 7)]);
        b.abort(23, 25, 1, 2);
        let mut frames = vec![sample_hello()];
        for (i, t) in b.build_sorted().into_iter().enumerate() {
            frames.push(Frame::Trace(TraceFrame {
                seq: i as u64 + 1,
                trace: t,
            }));
        }
        frames.push(Frame::Bye { traces_sent: 4 });
        frames.push(Frame::Ack { resume_from: 2 });
        frames.push(Frame::Reject {
            reason: RejectReason::Admission,
            message: "no room".to_string(),
        });
        frames.push(Frame::Verdict {
            json: "{\"clean\":true}".to_string(),
        });
        frames
    }

    #[test]
    fn frames_round_trip_via_blocking_io() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = wire.as_slice();
        let mut back = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            back.push(f);
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn frames_round_trip_via_incremental_decoder_byte_at_a_time() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.to_bytes());
        }
        let mut dec = FrameDecoder::new();
        let mut back = Vec::new();
        for byte in wire {
            dec.extend(&[byte]);
            while let Some(f) = dec.next_frame().unwrap() {
                back.push(f);
            }
        }
        dec.finish().unwrap();
        assert_eq!(back, frames);
    }

    #[test]
    fn inverted_interval_round_trips() {
        // Ill-formed intervals (hi < lo) must survive the wire so the
        // verifier's quarantine machinery can classify them.
        let t = Trace::new(
            Interval::new(Timestamp(100), Timestamp(3)),
            ClientId(1),
            TxnId(9),
            OpKind::Commit,
        );
        let f = Frame::Trace(TraceFrame { seq: 1, trace: t });
        let back = Frame::decode_payload(&f.encode_payload()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn extreme_timestamps_round_trip() {
        for (lo, hi) in [
            (0u64, u64::MAX),
            (u64::MAX, 0),
            (u64::MAX, u64::MAX),
            (1 << 63, (1 << 63) - 1),
        ] {
            let t = Trace::new(
                Interval::new(Timestamp(lo), Timestamp(hi)),
                ClientId(0),
                TxnId(0),
                OpKind::Abort,
            );
            let f = Frame::Trace(TraceFrame { seq: 1, trace: t });
            let back = Frame::decode_payload(&f.encode_payload()).unwrap();
            assert_eq!(back, f, "lo={lo} hi={hi}");
        }
    }

    #[test]
    fn corrupt_checksum_is_detected() {
        let mut bytes = sample_hello().to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a checksum bit
        let mut r = bytes.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut bytes = sample_hello().to_bytes();
        bytes[3] ^= 0x01; // flip a payload bit
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn truncated_stream_is_detected() {
        let bytes = sample_hello().to_bytes();
        for cut in 1..bytes.len() {
            let mut r = &bytes[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(WireError::Truncated)),
                "cut={cut}"
            );
            let mut dec = FrameDecoder::new();
            dec.extend(&bytes[..cut]);
            assert!(matches!(dec.next_frame(), Ok(None)), "cut={cut}");
            assert!(matches!(dec.finish(), Err(WireError::Truncated)));
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, (MAX_FRAME_LEN + 1) as u64);
        bytes.extend_from_slice(&[0u8; 16]);
        let mut r = bytes.as_slice();
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Oversized { .. })
        ));
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes: more than 64 bits.
        let bytes = [0xffu8; 11];
        let mut r = bytes.as_slice();
        assert!(matches!(read_frame(&mut r), Err(WireError::VarintOverflow)));
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(matches!(dec.next_frame(), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(
            Frame::decode_payload(&[99]),
            Err(WireError::UnknownFrame(99))
        ));
        // Trace frame with op tag 9.
        let f = Frame::Trace(TraceFrame {
            seq: 1,
            trace: Trace::new(
                Interval::new(Timestamp(1), Timestamp(2)),
                ClientId(0),
                TxnId(1),
                OpKind::Commit,
            ),
        });
        let mut payload = f.encode_payload();
        let last = payload.len() - 1;
        payload[last] = 9;
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(WireError::UnknownOp(9))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Frame::Bye { traces_sent: 3 }.encode_payload();
        payload.push(0);
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(WireError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            (1 << 32) - 1,
            1 << 32,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            assert!(cur.done().is_ok());
        }
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let frame = Frame::Bye { traces_sent: 1 };
        let bytes = frame.to_bytes();
        let mut dec = FrameDecoder::new();
        for _ in 0..1000 {
            dec.extend(&bytes);
            assert_eq!(dec.next_frame().unwrap(), Some(frame.clone()));
        }
        assert_eq!(dec.buffered(), 0);
    }
}
