//! End-to-end acceptance tests for `leopard serve`, driving the real
//! binary over the real wire:
//!
//! * kill -9 the daemon mid-stream, restart it on the same checkpoint
//!   directory, replay the capture — the final verdict and the on-disk
//!   checkpoint must be byte-identical to an uninterrupted run;
//! * a stream whose verifier panics is quarantined into a degraded
//!   verdict while a concurrently-ingesting healthy stream (and every
//!   later stream) is untouched.

use leopard_core::wire::{read_frame, write_frame};
use leopard_core::{
    control_command, ingest_capture, CaptureReader, Endpoint, Frame, Hello, IngestError,
    IsolationLevel, RejectReason, StreamVerdict, TraceFrame, WIRE_VERSION,
};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_leopard"))
}

/// Fresh scratch directory under the target-aware tmp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leopard-serve-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records a small SmallBank capture and returns its path.
fn record_capture(dir: &Path) -> PathBuf {
    let out = dir.join("capture.bin");
    let status = bin()
        .args([
            "record",
            "--workload",
            "smallbank",
            "--threads",
            "2",
            "--txns",
            "12",
            "--seed",
            "7",
            "--out",
        ])
        .arg(&out)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "record failed");
    out
}

struct Daemon {
    child: Child,
    ingest: Endpoint,
    control: Endpoint,
}

impl Daemon {
    /// Spawns `leopard serve` and waits until both endpoints accept.
    fn spawn(dir: &Path, ckpt_dir: &Path, every: u64, env: &[(&str, &str)]) -> Daemon {
        Daemon::spawn_opts(dir, ckpt_dir, every, env, &[])
    }

    /// [`Daemon::spawn`] with extra CLI flags (e.g. `--spill-dir`).
    fn spawn_opts(
        dir: &Path,
        ckpt_dir: &Path,
        every: u64,
        env: &[(&str, &str)],
        extra: &[&str],
    ) -> Daemon {
        fs::create_dir_all(dir).unwrap();
        let ingest_path = dir.join("ingest.sock");
        let control_path = dir.join("control.sock");
        let mut cmd = bin();
        cmd.args([
            "serve",
            "--listen",
            &format!("unix:{}", ingest_path.display()),
            "--control",
            &format!("unix:{}", control_path.display()),
            "--dir",
            &ckpt_dir.display().to_string(),
            "--checkpoint-every",
            &every.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().unwrap();
        let ingest = Endpoint::parse(&format!("unix:{}", ingest_path.display())).unwrap();
        let control = Endpoint::parse(&format!("unix:{}", control_path.display())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if control_command(&control, "streams").is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "daemon did not come up");
            std::thread::sleep(Duration::from_millis(25));
        }
        Daemon {
            child,
            ingest,
            control,
        }
    }

    /// Graceful stop through the control endpoint; waits for exit.
    fn shutdown(mut self) {
        let _ = control_command(&self.control, "shutdown");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if self.child.try_wait().unwrap().is_some() {
                return;
            }
            assert!(Instant::now() < deadline, "daemon did not exit");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// SIGKILL — no flush, no goodbye. The crash the recovery protocol
    /// exists for.
    fn kill9(mut self) {
        self.child.kill().unwrap();
        let _ = self.child.wait();
    }
}

fn ingest_file(
    endpoint: &Endpoint,
    capture: &Path,
    stream: &str,
) -> Result<StreamVerdict, IngestError> {
    let file = fs::File::open(capture).unwrap();
    let mut reader = CaptureReader::new(file).unwrap();
    ingest_capture(
        endpoint,
        stream,
        IsolationLevel::Serializable,
        0,
        &mut reader,
    )
}

#[test]
fn kill_dash_nine_then_restart_matches_uninterrupted_run_byte_for_byte() {
    let base = scratch("kill9");
    let capture = record_capture(&base);

    // Uninterrupted reference run.
    let ref_dir = base.join("ref");
    let d = Daemon::spawn(&base.join("ref-sock"), &ref_dir, 8, &[]);
    let ref_verdict = ingest_file(&d.ingest, &capture, "t").unwrap();
    d.shutdown();
    assert_eq!(ref_verdict.status, "ok");
    assert!(ref_verdict.clean && ref_verdict.complete);
    let ref_ckpt = fs::read_to_string(ref_dir.join("t.ckpt")).unwrap();
    let ref_verdict_json = fs::read_to_string(ref_dir.join("t.verdict.json")).unwrap();

    // Interrupted run: stream 20 traces (past two checkpoint boundaries),
    // leave the connection open, and SIGKILL the daemon.
    let kill_dir = base.join("kill");
    let sock_dir = base.join("kill-sock");
    let d = Daemon::spawn(&sock_dir, &kill_dir, 8, &[]);
    {
        let file = fs::File::open(&capture).unwrap();
        let mut reader = CaptureReader::new(file).unwrap();
        let header = reader.header().clone();
        let mut sock = d.ingest.connect().unwrap();
        write_frame(
            &mut sock,
            &Frame::Hello(Hello {
                version: WIRE_VERSION,
                stream: "t".to_string(),
                description: header.description,
                level: IsolationLevel::Serializable,
                mem_budget: 0,
                preload: header.preload,
            }),
        )
        .unwrap();
        sock.flush().unwrap();
        match read_frame(&mut sock).unwrap() {
            Some(Frame::Ack { resume_from }) => assert_eq!(resume_from, 0),
            other => panic!("expected Ack, got {other:?}"),
        }
        for seq in 1..=20u64 {
            let trace = reader
                .next_trace()
                .unwrap()
                .expect("capture has 20+ traces");
            write_frame(&mut sock, &Frame::Trace(TraceFrame { seq, trace })).unwrap();
        }
        sock.flush().unwrap();
        // Wait for durable progress: the first cadence checkpoint (8
        // ingested traces) must be on disk before the crash.
        let ckpt = kill_dir.join("t.ckpt");
        let deadline = Instant::now() + Duration::from_secs(20);
        while !ckpt.exists() {
            assert!(Instant::now() < deadline, "no checkpoint before kill");
            std::thread::sleep(Duration::from_millis(25));
        }
        d.kill9();
        // The connection is dead; drop the socket with the daemon.
    }

    // Restart on the same directory: recovery re-opens the checkpoint,
    // the client replays, and the resume protocol skips what survived.
    let d = Daemon::spawn(&sock_dir, &kill_dir, 8, &[]);
    let streams = control_command(&d.control, "streams").unwrap();
    assert!(
        streams.contains("\"t\""),
        "recovered stream missing from listing: {streams}"
    );
    let verdict = ingest_file(&d.ingest, &capture, "t").unwrap();
    d.shutdown();

    assert_eq!(verdict, ref_verdict, "verdicts diverged after crash");
    let ckpt = fs::read_to_string(kill_dir.join("t.ckpt")).unwrap();
    let verdict_json = fs::read_to_string(kill_dir.join("t.verdict.json")).unwrap();
    assert_eq!(ckpt, ref_ckpt, "checkpoint not byte-identical");
    assert_eq!(verdict_json, ref_verdict_json, "verdict not byte-identical");
}

/// Counts segment files in a stream's spill-tier directory.
fn spill_segments(dir: &Path) -> usize {
    fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("lps"))
                .count()
        })
        .unwrap_or(0)
}

/// Kill -9 while the stream's verifier is actively spilling cold state
/// to disk: restart on the same checkpoint + spill directories, replay
/// the capture, and the verdict must be byte-identical to an
/// uninterrupted spilling run — no lost records, no degraded coverage.
#[test]
fn kill_dash_nine_mid_spill_recovers_byte_identical_verdicts() {
    let base = scratch("kill9spill");
    let capture = record_capture(&base);
    // Tight enough that the spill rung fires on this capture, loose
    // enough that the coverage-costing rungs below it never run.
    const BUDGET: u64 = 24 * 1024;

    // Uninterrupted spilling reference run.
    let ref_dir = base.join("ref");
    let ref_spill = base.join("ref-spill");
    let d = Daemon::spawn_opts(
        &base.join("ref-sock"),
        &ref_dir,
        8,
        &[],
        &["--spill-dir", &ref_spill.display().to_string()],
    );
    let file = fs::File::open(&capture).unwrap();
    let mut reader = CaptureReader::new(file).unwrap();
    let ref_verdict = ingest_capture(
        &d.ingest,
        "t",
        IsolationLevel::Serializable,
        BUDGET,
        &mut reader,
    )
    .unwrap();
    d.shutdown();
    assert_eq!(ref_verdict.status, "ok");
    assert!(
        ref_verdict.clean && ref_verdict.complete,
        "spilling cost coverage: {ref_verdict:?}"
    );
    let ref_verdict_json = fs::read_to_string(ref_dir.join("t.verdict.json")).unwrap();
    assert!(
        spill_segments(&ref_spill.join("t")) > 0,
        "reference run never spilled — the budget is too generous for this capture"
    );

    // Interrupted run: same budget, stream 20 traces past two checkpoint
    // boundaries, confirm the tier has segments on disk, then SIGKILL.
    let kill_dir = base.join("kill");
    let kill_spill = base.join("kill-spill");
    let sock_dir = base.join("kill-sock");
    let spill_flag = kill_spill.display().to_string();
    let d = Daemon::spawn_opts(&sock_dir, &kill_dir, 8, &[], &["--spill-dir", &spill_flag]);
    {
        let file = fs::File::open(&capture).unwrap();
        let mut reader = CaptureReader::new(file).unwrap();
        let header = reader.header().clone();
        let mut sock = d.ingest.connect().unwrap();
        write_frame(
            &mut sock,
            &Frame::Hello(Hello {
                version: WIRE_VERSION,
                stream: "t".to_string(),
                description: header.description,
                level: IsolationLevel::Serializable,
                mem_budget: BUDGET,
                preload: header.preload,
            }),
        )
        .unwrap();
        sock.flush().unwrap();
        match read_frame(&mut sock).unwrap() {
            Some(Frame::Ack { resume_from }) => assert_eq!(resume_from, 0),
            other => panic!("expected Ack, got {other:?}"),
        }
        for seq in 1..=20u64 {
            let trace = reader
                .next_trace()
                .unwrap()
                .expect("capture has 20+ traces");
            write_frame(&mut sock, &Frame::Trace(TraceFrame { seq, trace })).unwrap();
        }
        sock.flush().unwrap();
        // Wait for durable progress: a cadence checkpoint AND spilled
        // segments must both be on disk, so the kill lands mid-spill.
        let ckpt = kill_dir.join("t.ckpt");
        let deadline = Instant::now() + Duration::from_secs(20);
        while !ckpt.exists() || spill_segments(&kill_spill.join("t")) == 0 {
            assert!(
                Instant::now() < deadline,
                "no checkpoint + spill segments before kill"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        d.kill9();
    }

    // Restart on the same directories: recovery re-opens the chained
    // checkpoint AND the spill tier (the checkpoint references spilled
    // record addresses), then the resume protocol skips what survived.
    let d = Daemon::spawn_opts(&sock_dir, &kill_dir, 8, &[], &["--spill-dir", &spill_flag]);
    let streams = control_command(&d.control, "streams").unwrap();
    assert!(
        streams.contains("\"t\""),
        "recovered stream missing from listing: {streams}"
    );
    let file = fs::File::open(&capture).unwrap();
    let mut reader = CaptureReader::new(file).unwrap();
    let verdict = ingest_capture(
        &d.ingest,
        "t",
        IsolationLevel::Serializable,
        BUDGET,
        &mut reader,
    )
    .unwrap();
    d.shutdown();

    assert_eq!(
        verdict, ref_verdict,
        "verdicts diverged after mid-spill crash"
    );
    let verdict_json = fs::read_to_string(kill_dir.join("t.verdict.json")).unwrap();
    assert_eq!(
        verdict_json, ref_verdict_json,
        "verdict JSON not byte-identical after mid-spill crash"
    );
}

#[test]
fn panicking_stream_is_quarantined_without_touching_neighbours() {
    let base = scratch("panic");
    let capture = record_capture(&base);
    let dir = base.join("serve");
    // The injection hook makes the "bad" stream's verifier panic while
    // processing its 5th trace.
    let d = Daemon::spawn(
        &base.join("sock"),
        &dir,
        8,
        &[("LEOPARD_SERVE_PANIC_AT", "bad:5")],
    );

    // A healthy stream ingests concurrently with the panicking one.
    let good = {
        let endpoint = d.ingest.clone();
        let capture = capture.clone();
        std::thread::spawn(move || ingest_file(&endpoint, &capture, "good"))
    };
    let bad = ingest_file(&d.ingest, &capture, "bad");
    match bad {
        Err(IngestError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::Quarantined);
        }
        other => panic!("expected quarantine rejection, got {other:?}"),
    }
    let good_verdict = good.join().unwrap().unwrap();
    assert_eq!(good_verdict.status, "ok");
    assert!(good_verdict.clean && good_verdict.complete);

    // The daemon survives the panic and serves fresh streams.
    let later = ingest_file(&d.ingest, &capture, "later").unwrap();
    assert!(later.clean && later.complete);

    // The quarantined stream's degraded verdict is on disk and in the
    // stream listing.
    let streams = control_command(&d.control, "streams").unwrap();
    assert!(
        streams.contains("quarantined"),
        "quarantine missing from listing: {streams}"
    );
    let bad_verdict: StreamVerdict =
        StreamVerdict::from_json(&fs::read_to_string(dir.join("bad.verdict.json")).unwrap())
            .unwrap();
    assert_eq!(bad_verdict.status, "quarantined");
    d.shutdown();
}
