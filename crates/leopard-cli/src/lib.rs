//! Library backing the `leopard` command-line tool.
//!
//! Four subcommands:
//!
//! * `record` — run a bundled workload against the bundled engine (with
//!   optional fault injection) and write a capture file;
//! * `verify` — audit a capture file at a chosen isolation level or DBMS
//!   profile; a history preflight pass (H001–H006) runs first and refuses
//!   error-severity histories with exit code 4 unless `--skip-preflight`;
//!   supports degraded-mode tolerance of incomplete histories
//!   (`--degraded`) and checkpoint/resume (`--checkpoint`, `--resume`);
//! * `chaos` — run a bundled workload under seeded fault injection
//!   (client kills, stalls, dropped/duplicated trace deliveries,
//!   clock-skew bursts) through the online verifier with watermark-stall
//!   eviction, reporting the verdict plus a coverage breakdown;
//! * `serve` — run the long-lived verification daemon: many concurrent
//!   capture streams over the length-prefixed binary wire protocol,
//!   per-stream fault isolation, periodic checkpoints, and crash
//!   recovery with bit-identical verdicts;
//! * `ingest` — stream a capture file to a running daemon;
//! * `soak` — hammer a running daemon with concurrent streams under
//!   seeded wire chaos and check convergence to clean verdicts;
//! * `lint-history` — run only the preflight analysis, human or `--json`;
//! * `oracle` — run the anomaly-injection differential verdict matrix
//!   (9 anomaly classes × 4 levels × {Leopard, Cobra, cycle-search},
//!   plus the preflight corruption checks), optionally writing the
//!   deterministic corpus with `--out-dir`;
//! * `catalog` — print the Fig. 1 mechanism catalog.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay inside
//! the approved dependency set.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
pub mod signals;

pub use args::{parse_args, Command, ParseError};

/// Entry point shared by the binary and the tests. Returns the process
/// exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match parse_args(argv) {
        Ok(Command::Record(cfg)) => commands::record(&cfg, out),
        Ok(Command::Verify(cfg)) => commands::verify(&cfg, out),
        Ok(Command::Chaos(cfg)) => commands::chaos(&cfg, out),
        Ok(Command::Serve(cfg)) => commands::serve(&cfg, out),
        Ok(Command::Ingest(cfg)) => commands::ingest(&cfg, out),
        Ok(Command::Soak(cfg)) => commands::soak(&cfg, out),
        Ok(Command::LintHistory(cfg)) => commands::lint_history(&cfg, out),
        Ok(Command::Oracle(cfg)) => commands::oracle(&cfg, out),
        Ok(Command::Catalog) => commands::catalog(out),
        Ok(Command::Help) => {
            let _ = writeln!(out, "{}", args::USAGE);
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n\n{}", args::USAGE);
            2
        }
    }
}
