//! Hand-rolled argument parsing for the `leopard` CLI.

use leopard_core::IsolationLevel;
use leopard_db::FaultKind;
use std::fmt;

/// Usage text.
pub const USAGE: &str = "\
leopard — black-box isolation-level verification

USAGE:
  leopard record [OPTIONS]          run a workload, write a capture file
  leopard verify <FILE> [OPTS]      audit a capture file
  leopard lint-history <FILE> [OPTS]  preflight a capture file (H001-H006)
  leopard oracle [OPTIONS]          run the anomaly-injection verdict matrix
  leopard catalog                   print the DBMS mechanism catalog (Fig. 1)
  leopard help                      show this message

record options:
  --workload <smallbank|tpcc|ycsb|blindw-w|blindw-rw|blindw-rw+>  (default smallbank)
  --level <rc|rr|si|sr>         isolation level of the engine (default sr)
  --threads <N>                 client threads (default 4)
  --txns <N>                    transactions per client (default 500)
  --scale <N>                   workload scale factor (default 1)
  --fault <dirty-read|stale-snapshot|skip-lock|lost-update|skip-certifier>
  --fault-prob <0..1>           fault probability (default 0.05)
  --seed <N>                    RNG seed (default 42)
  --out <FILE>                  capture path (default capture.jsonl)

verify options:
  --level <rc|rr|si|sr>         level the DBMS promised (default sr)
  --skew-bound <NANOS>          clock synchronisation error bound (default 0)
  --no-gc                       disable verifier garbage collection
  --skip-preflight              verify even if history preflight finds errors

lint-history options:
  --json                        emit the diagnostic report as JSON

oracle options:
  --workload <NAME>             clean-run workload (default blindw-rw)
  --rows <N>                    preloaded rows of the clean run (default 32)
  --clients <N>                 clients of the clean run (default 2)
  --txns <N>                    transactions per client (default 8)
  --seed <N>                    clean-run RNG seed (default 42)
  --json                        emit the verdict matrix as JSON
  --out-dir <DIR>               also write the corpus (captures + matrix.json)

exit codes: 0 clean, 1 i/o error, 2 usage error, 3 violations /
preflight errors found, 4 verify refused (history failed preflight)";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `leopard record ...`
    Record(RecordConfig),
    /// `leopard verify ...`
    Verify(VerifyConfig),
    /// `leopard lint-history ...`
    LintHistory(LintHistoryConfig),
    /// `leopard oracle ...`
    Oracle(OracleConfig),
    /// `leopard catalog`
    Catalog,
    /// `leopard help`
    Help,
}

/// Configuration of `leopard record`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordConfig {
    /// Workload name.
    pub workload: String,
    /// Engine isolation level.
    pub level: IsolationLevel,
    /// Client threads.
    pub threads: usize,
    /// Transactions per client.
    pub txns: u64,
    /// Scale factor (accounts ×1000, warehouses, records ×1000, ...).
    pub scale: u64,
    /// Injected fault, if any.
    pub fault: Option<FaultKind>,
    /// Fault probability.
    pub fault_prob: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output capture path.
    pub out: String,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            workload: "smallbank".to_string(),
            level: IsolationLevel::Serializable,
            threads: 4,
            txns: 500,
            scale: 1,
            fault: None,
            fault_prob: 0.05,
            seed: 42,
            out: "capture.jsonl".to_string(),
        }
    }
}

/// Configuration of `leopard verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Capture file to audit.
    pub file: String,
    /// The isolation level the DBMS promised.
    pub level: IsolationLevel,
    /// Clock-skew bound (ns).
    pub skew_bound: u64,
    /// Disable garbage collection (keeps everything; for debugging).
    pub no_gc: bool,
    /// Run the verifier even when history preflight reports errors.
    pub skip_preflight: bool,
}

/// Configuration of `leopard lint-history`.
#[derive(Debug, Clone, PartialEq)]
pub struct LintHistoryConfig {
    /// Capture file to analyze.
    pub file: String,
    /// Emit the report as JSON instead of human-readable text.
    pub json: bool,
}

/// Configuration of `leopard oracle`.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Workload of the clean base capture.
    pub workload: String,
    /// Preloaded rows of the clean run.
    pub rows: u64,
    /// Clients of the clean run.
    pub clients: usize,
    /// Transactions per client.
    pub txns: u64,
    /// Clean-run RNG seed.
    pub seed: u64,
    /// Emit the verdict matrix as JSON instead of the table.
    pub json: bool,
    /// Also write the corpus (mutated captures + matrix.json + manifest)
    /// into this directory.
    pub out_dir: Option<String>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            workload: "blindw-rw".to_string(),
            rows: 32,
            clients: 2,
            txns: 8,
            seed: 42,
            json: false,
            out_dir: None,
        }
    }
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_level(s: &str) -> Result<IsolationLevel, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "rc" | "read-committed" => Ok(IsolationLevel::ReadCommitted),
        "rr" | "repeatable-read" => Ok(IsolationLevel::RepeatableRead),
        "si" | "snapshot-isolation" => Ok(IsolationLevel::SnapshotIsolation),
        "sr" | "serializable" => Ok(IsolationLevel::Serializable),
        other => Err(ParseError(format!("unknown isolation level `{other}`"))),
    }
}

fn parse_fault(s: &str) -> Result<FaultKind, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "dirty-read" => Ok(FaultKind::DirtyRead),
        "stale-snapshot" => Ok(FaultKind::StaleSnapshot),
        "skip-lock" => Ok(FaultKind::SkipLock),
        "lost-update" => Ok(FaultKind::AllowLostUpdate),
        "skip-certifier" => Ok(FaultKind::SkipCertifier),
        "first-write-no-lock" => Ok(FaultKind::FirstWriteNoLock),
        "phantom-extra-version" => Ok(FaultKind::PhantomExtraVersion),
        other => Err(ParseError(format!("unknown fault `{other}`"))),
    }
}

fn want<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, ParseError> {
    let v = value.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| ParseError(format!("invalid value `{v}` for {flag}")))
}

/// Parses `argv` (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = argv.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "catalog" => Ok(Command::Catalog),
        "record" => {
            let mut cfg = RecordConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workload" => {
                        cfg.workload = want::<String>(flag, it.next())?;
                    }
                    "--level" => cfg.level = parse_level(&want::<String>(flag, it.next())?)?,
                    "--threads" => cfg.threads = want(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--scale" => cfg.scale = want(flag, it.next())?,
                    "--fault" => cfg.fault = Some(parse_fault(&want::<String>(flag, it.next())?)?),
                    "--fault-prob" => cfg.fault_prob = want(flag, it.next())?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--out" => cfg.out = want::<String>(flag, it.next())?,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.threads == 0 {
                return Err(ParseError("--threads must be at least 1".to_string()));
            }
            Ok(Command::Record(cfg))
        }
        "verify" => {
            let mut file = None;
            let mut cfg = VerifyConfig {
                file: String::new(),
                level: IsolationLevel::Serializable,
                skew_bound: 0,
                no_gc: false,
                skip_preflight: false,
            };
            let mut it = argv[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--level" => cfg.level = parse_level(&want::<String>(arg, it.next())?)?,
                    "--skew-bound" => cfg.skew_bound = want(arg, it.next())?,
                    "--no-gc" => cfg.no_gc = true,
                    "--skip-preflight" => cfg.skip_preflight = true,
                    flag if flag.starts_with("--") => {
                        return Err(ParseError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(ParseError("more than one capture file given".into()));
                        }
                    }
                }
            }
            cfg.file = file.ok_or_else(|| ParseError("verify needs a capture file".into()))?;
            Ok(Command::Verify(cfg))
        }
        "lint-history" => {
            let mut file = None;
            let mut json = false;
            let mut it = argv[1..].iter();
            for arg in &mut it {
                match arg.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with("--") => {
                        return Err(ParseError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(ParseError("more than one capture file given".into()));
                        }
                    }
                }
            }
            let file =
                file.ok_or_else(|| ParseError("lint-history needs a capture file".into()))?;
            Ok(Command::LintHistory(LintHistoryConfig { file, json }))
        }
        "oracle" => {
            let mut cfg = OracleConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workload" => cfg.workload = want::<String>(flag, it.next())?,
                    "--rows" => cfg.rows = want(flag, it.next())?,
                    "--clients" => cfg.clients = want(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--json" => cfg.json = true,
                    "--out-dir" => cfg.out_dir = Some(want::<String>(flag, it.next())?),
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.clients == 0 {
                return Err(ParseError("--clients must be at least 1".to_string()));
            }
            Ok(Command::Oracle(cfg))
        }
        other => Err(ParseError(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
    }

    #[test]
    fn record_defaults_and_overrides() {
        let cmd = parse_args(&args(
            "record --workload tpcc --level rc --threads 8 --txns 100 --fault skip-lock --out t.jsonl",
        ))
        .unwrap();
        let Command::Record(cfg) = cmd else { panic!() };
        assert_eq!(cfg.workload, "tpcc");
        assert_eq!(cfg.level, IsolationLevel::ReadCommitted);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.txns, 100);
        assert_eq!(cfg.fault, Some(FaultKind::SkipLock));
        assert_eq!(cfg.out, "t.jsonl");
    }

    #[test]
    fn verify_requires_a_file() {
        assert!(parse_args(&args("verify --level sr")).is_err());
        let cmd = parse_args(&args("verify cap.jsonl --level si --skew-bound 500")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.file, "cap.jsonl");
        assert_eq!(cfg.level, IsolationLevel::SnapshotIsolation);
        assert_eq!(cfg.skew_bound, 500);
        assert!(!cfg.skip_preflight);
        let cmd = parse_args(&args("verify cap.jsonl --skip-preflight")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert!(cfg.skip_preflight);
    }

    #[test]
    fn lint_history_parses() {
        assert!(parse_args(&args("lint-history")).is_err());
        assert!(parse_args(&args("lint-history a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&args("lint-history a.jsonl --bogus")).is_err());
        let cmd = parse_args(&args("lint-history cap.jsonl --json")).unwrap();
        let Command::LintHistory(cfg) = cmd else {
            panic!()
        };
        assert_eq!(cfg.file, "cap.jsonl");
        assert!(cfg.json);
    }

    #[test]
    fn oracle_defaults_and_overrides() {
        let cmd = parse_args(&args("oracle")).unwrap();
        assert_eq!(cmd, Command::Oracle(OracleConfig::default()));
        let cmd = parse_args(&args(
            "oracle --workload ycsb --rows 64 --clients 3 --txns 12 --seed 7 --json --out-dir corpus",
        ))
        .unwrap();
        let Command::Oracle(cfg) = cmd else { panic!() };
        assert_eq!(cfg.workload, "ycsb");
        assert_eq!(cfg.rows, 64);
        assert_eq!(cfg.clients, 3);
        assert_eq!(cfg.txns, 12);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.json);
        assert_eq!(cfg.out_dir.as_deref(), Some("corpus"));
        assert!(parse_args(&args("oracle --clients 0")).is_err());
        assert!(parse_args(&args("oracle --bogus")).is_err());
    }

    #[test]
    fn bad_flags_are_rejected_with_context() {
        let err = parse_args(&args("record --bogus 3")).unwrap_err();
        assert!(err.0.contains("--bogus"));
        let err = parse_args(&args("record --threads zero")).unwrap_err();
        assert!(err.0.contains("zero"));
        let err = parse_args(&args("record --threads 0")).unwrap_err();
        assert!(err.0.contains("at least 1"));
        let err = parse_args(&args("frobnicate")).unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn all_levels_and_faults_parse() {
        for (s, l) in [
            ("rc", IsolationLevel::ReadCommitted),
            ("rr", IsolationLevel::RepeatableRead),
            ("si", IsolationLevel::SnapshotIsolation),
            ("sr", IsolationLevel::Serializable),
        ] {
            assert_eq!(parse_level(s).unwrap(), l);
        }
        for s in [
            "dirty-read",
            "stale-snapshot",
            "skip-lock",
            "lost-update",
            "skip-certifier",
            "first-write-no-lock",
            "phantom-extra-version",
        ] {
            assert!(parse_fault(s).is_ok(), "{s}");
        }
        assert!(parse_level("chaos").is_err());
        assert!(parse_fault("chaos").is_err());
    }
}
