//! Hand-rolled argument parsing for the `leopard` CLI.

use leopard_core::IsolationLevel;
use leopard_db::FaultKind;
use std::fmt;

/// Usage text.
pub const USAGE: &str = "\
leopard — black-box isolation-level verification

USAGE:
  leopard record [OPTIONS]          run a workload, write a capture file
  leopard verify <FILE> [OPTS]      audit a capture file
  leopard chaos [OPTIONS]           run a workload under fault injection
                                    through the online verifier
  leopard lint-history <FILE> [OPTS]  preflight a capture file (H001-H006)
  leopard oracle [OPTIONS]          run the anomaly-injection verdict matrix
  leopard serve [OPTIONS]           run the verification daemon (many
                                    concurrent streams over the wire protocol)
  leopard ingest <FILE> [OPTS]      stream a capture file into a daemon
  leopard soak [OPTIONS]            chaos-soak a daemon with wire clients
  leopard catalog                   print the DBMS mechanism catalog (Fig. 1)
  leopard help                      show this message

record options:
  --workload <smallbank|tpcc|ycsb|blindw-w|blindw-rw|blindw-rw+>  (default smallbank)
  --level <rc|rr|si|sr>         isolation level of the engine (default sr)
  --threads <N>                 client threads (default 4)
  --txns <N>                    transactions per client (default 500)
  --scale <N>                   workload scale factor (default 1)
  --fault <dirty-read|stale-snapshot|skip-lock|lost-update|skip-certifier>
  --fault-prob <0..1>           fault probability (default 0.05)
  --seed <N>                    RNG seed (default 42)
  --out <FILE>                  capture path (default capture.jsonl)

verify options:
  --level <rc|rr|si|sr>         level the DBMS promised (default sr)
  --skew-bound <NANOS>          clock synchronisation error bound (default 0)
  --no-gc                       disable verifier garbage collection
  --skip-preflight              verify even if history preflight finds errors
  --degraded                    tolerate incomplete histories: quarantine
                                ill-formed traces, demote unexplainable reads
  --resume <CKPT>               resume from a checkpoint file (uses the
                                checkpoint's verifier configuration)
  --checkpoint <FILE>           write a checkpoint of the final state here
  --checkpoint-every <N>        also checkpoint every N ingested traces
  --mem-budget <BYTES>          cap verifier state; over budget the verifier
                                forces GC and sheds into degraded coverage
  --shards <N>                  run N key-sharded verifier worker threads
                                (default 1 = single-threaded; checkpoints use
                                the sharded envelope when N > 1)
  --spill-dir <DIR>             spill cold verifier state to segment files
                                under DIR when over --mem-budget (rung 1.5:
                                runs before forced dispatch and eviction, so
                                coverage is never degraded by spilling)
  --spill-cache-pages <N>       spill page-cache capacity in 4 KiB pages
                                (default 256; needs --spill-dir)
  --json                        emit the verdict, peak memory and shed /
                                eviction counters as JSON (plus an `obs`
                                metrics block when observability is on)
  --metrics-out <FILE>          enable observability; write the metrics
                                registry in Prometheus text format here
  --trace-out <FILE>            enable observability; write a Chrome
                                trace-event timeline (load in Perfetto) here
  --metrics-interval <SECS>     with --metrics-out: also rewrite the file
                                every SECS seconds while the run progresses

chaos options:
  --workload <NAME>             bundled workload (default blindw-rw)
  --level <rc|rr|si|sr>         engine + verifier isolation level (default sr)
  --threads <N>                 client threads (default 4)
  --txns <N>                    transactions per client (default 200)
  --scale <N>                   workload scale factor (default 1)
  --seed <N>                    workload RNG seed (default 42)
  --chaos-seed <N>              fault-injection seed (default 7)
  --kill-prob <0..1>            kill client mid-txn, no terminal (default 0.05)
  --stall-prob <0..1>           stall client mid-txn (default 0.05)
  --stall-ms <MS>               stall duration (default 3)
  --drop-prob <0..1>            drop a trace delivery (default 0.02)
  --dup-prob <0..1>             duplicate a trace delivery (default 0.02)
  --skew-burst-prob <0..1>      clock skew burst probability (default 0)
  --skew-magnitude <NANOS>      skew added per burst (default 0)
  --retry-attempts <N>          attempts per transaction (default 3)
  --retry-backoff-ms <MS>       base exponential backoff (default 1)
  --retry-jitter <0..1>         jitter fraction around each backoff sleep,
                                decorrelating retry storms (default 0)
  --evict-timeout-ms <MS>       evict a watermark-pinning client after this
                                long without progress (default 1000)
  --checkpoint <FILE>           write online checkpoints to this path
  --checkpoint-every <N>        checkpoint every N dispatched traces
  --mem-budget <BYTES>          cap tracer + verifier memory; over budget the
                                governor forces GC, force-dispatches, then
                                evicts the laggiest client
  --shards <N>                  run N key-sharded verifier worker threads
                                (default 1 = single-threaded)
  --spill-dir <DIR>             spill cold verifier state to segment files
                                under DIR when over --mem-budget
  --spill-cache-pages <N>       spill page-cache capacity in 4 KiB pages
                                (default 256; needs --spill-dir)
  --disk-fault-prob <0..1>      inject seeded disk faults (short/torn writes,
                                read errors, fsync failures) into the spill
                                tier with this probability (default 0)
  --disk-enospc-after <BYTES>   spill tier hits ENOSPC after this many bytes
                                (default: unlimited disk)
  --json                        emit the run summary as JSON (plus an `obs`
                                metrics block when observability is on)
  --metrics-out <FILE>          enable observability; write Prometheus
                                metrics here at the end of the run
  --trace-out <FILE>            enable observability; write a Chrome
                                trace-event timeline (load in Perfetto) here
  --metrics-interval <SECS>     with --metrics-out: also rewrite the file
                                every SECS seconds while the run progresses

lint-history options:
  --json                        emit the diagnostic report as JSON

oracle options:
  --workload <NAME>             clean-run workload (default blindw-rw)
  --rows <N>                    preloaded rows of the clean run (default 32)
  --clients <N>                 clients of the clean run (default 2)
  --txns <N>                    transactions per client (default 8)
  --seed <N>                    clean-run RNG seed (default 42)
  --json                        emit the verdict matrix as JSON
  --out-dir <DIR>               also write the corpus (captures + matrix.json)

serve options:
  --listen <unix:PATH|tcp:ADDR> ingest endpoint (default unix:leopard.sock)
  --control <unix:PATH|tcp:ADDR> control endpoint: `metrics`, `streams`,
                                `drain`, `shutdown`, plus HTTP GET /metrics
                                for a Prometheus scraper (optional)
  --dir <DIR>                   per-stream checkpoint + verdict directory;
                                scanned on startup for crash recovery
                                (default leopard-serve)
  --checkpoint-every <N>        checkpoint each stream every N ingested
                                traces (default 512)
  --global-budget <BYTES>       shared admission pool across all streams
                                (default unlimited)
  --spill-dir <DIR>             spill cold stream state to per-stream segment
                                files under DIR when over a stream's budget
  --spill-cache-pages <N>       spill page-cache capacity in 4 KiB pages per
                                stream (default 256; needs --spill-dir)

ingest options:
  --to <unix:PATH|tcp:ADDR>     daemon ingest endpoint
                                (default unix:leopard.sock)
  --stream <NAME>               stream name at the daemon (default: the
                                capture file name)
  --level <rc|rr|si|sr>         level to verify (default sr)
  --mem-budget <BYTES>          per-stream budget sent in the handshake
  --json                        print the daemon's verdict JSON verbatim

soak options:
  --to <unix:PATH|tcp:ADDR>     daemon ingest endpoint
                                (default unix:leopard.sock)
  --streams <N>                 concurrent client streams (default 4)
  --workload <NAME>             history workload per stream (default smallbank)
  --txns <N>                    transactions per workload client (default 50)
  --clients <N>                 workload clients per stream (default 3)
  --level <rc|rr|si|sr>         level to verify (default sr)
  --seed <N>                    master seed (default 1)
  --kill-prob <0..1>            cut the connection per frame (default 0.02)
  --dup-prob <0..1>             duplicate a frame (default 0.05)
  --stall-prob <0..1>           stall before a frame (default 0)
  --stall-ms <MS>               stall duration (default 3)
  --retry-attempts <N>          reconnect attempts before giving up on a
                                stream (default 200)
  --retry-backoff-ms <MS>       base reconnect backoff (default 5)
  --retry-jitter <0..1>         reconnect backoff jitter (default 0.5)

exit codes: 0 clean, 1 i/o error, 2 usage error, 3 violations /
preflight errors found, 4 verify refused (history failed preflight);
interrupted runs (SIGINT/SIGTERM) flush checkpoints and exit 130";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `leopard record ...`
    Record(RecordConfig),
    /// `leopard verify ...`
    Verify(VerifyConfig),
    /// `leopard chaos ...`
    Chaos(ChaosConfig),
    /// `leopard lint-history ...`
    LintHistory(LintHistoryConfig),
    /// `leopard oracle ...`
    Oracle(OracleConfig),
    /// `leopard serve ...`
    Serve(ServeCliConfig),
    /// `leopard ingest ...`
    Ingest(IngestConfig),
    /// `leopard soak ...`
    Soak(SoakCliConfig),
    /// `leopard catalog`
    Catalog,
    /// `leopard help`
    Help,
}

/// Configuration of `leopard serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCliConfig {
    /// Ingest endpoint (`unix:<path>` or `tcp:<host:port>`).
    pub listen: String,
    /// Optional control/metrics endpoint.
    pub control: Option<String>,
    /// Checkpoint + verdict directory.
    pub dir: String,
    /// Per-stream checkpoint cadence (ingested traces).
    pub checkpoint_every: u64,
    /// Shared admission pool in bytes (0 = unlimited).
    pub global_budget: u64,
    /// Spill directory for cold stream state (`None` = in-memory only).
    pub spill_dir: Option<String>,
    /// Spill page-cache capacity in pages per stream (`None` = default).
    pub spill_cache_pages: Option<usize>,
}

impl Default for ServeCliConfig {
    fn default() -> Self {
        ServeCliConfig {
            listen: "unix:leopard.sock".to_string(),
            control: None,
            dir: "leopard-serve".to_string(),
            checkpoint_every: 512,
            global_budget: 0,
            spill_dir: None,
            spill_cache_pages: None,
        }
    }
}

/// Configuration of `leopard ingest`.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Capture file to stream.
    pub file: String,
    /// Daemon ingest endpoint.
    pub to: String,
    /// Stream name (`None` = the capture file name).
    pub stream: Option<String>,
    /// Isolation level to verify.
    pub level: IsolationLevel,
    /// Per-stream memory budget for the handshake (0 = unlimited).
    pub mem_budget: u64,
    /// Print the verdict JSON verbatim.
    pub json: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            file: String::new(),
            to: "unix:leopard.sock".to_string(),
            stream: None,
            level: IsolationLevel::Serializable,
            mem_budget: 0,
            json: false,
        }
    }
}

/// Configuration of `leopard soak`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakCliConfig {
    /// Daemon ingest endpoint.
    pub to: String,
    /// Concurrent client streams.
    pub streams: usize,
    /// History workload per stream.
    pub workload: String,
    /// Transactions per workload client.
    pub txns: u64,
    /// Workload clients per stream.
    pub clients: usize,
    /// Isolation level to verify.
    pub level: IsolationLevel,
    /// Master seed.
    pub seed: u64,
    /// Per-frame connection-cut probability.
    pub kill_prob: f64,
    /// Per-frame duplication probability.
    pub dup_prob: f64,
    /// Per-frame stall probability.
    pub stall_prob: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Reconnect attempts before giving up on a stream.
    pub retry_attempts: u32,
    /// Base reconnect backoff in milliseconds.
    pub retry_backoff_ms: u64,
    /// Reconnect backoff jitter fraction.
    pub retry_jitter: f64,
}

impl Default for SoakCliConfig {
    fn default() -> Self {
        SoakCliConfig {
            to: "unix:leopard.sock".to_string(),
            streams: 4,
            workload: "smallbank".to_string(),
            txns: 50,
            clients: 3,
            level: IsolationLevel::Serializable,
            seed: 1,
            kill_prob: 0.02,
            dup_prob: 0.05,
            stall_prob: 0.0,
            stall_ms: 3,
            retry_attempts: 200,
            retry_backoff_ms: 5,
            retry_jitter: 0.5,
        }
    }
}

/// Configuration of `leopard record`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordConfig {
    /// Workload name.
    pub workload: String,
    /// Engine isolation level.
    pub level: IsolationLevel,
    /// Client threads.
    pub threads: usize,
    /// Transactions per client.
    pub txns: u64,
    /// Scale factor (accounts ×1000, warehouses, records ×1000, ...).
    pub scale: u64,
    /// Injected fault, if any.
    pub fault: Option<FaultKind>,
    /// Fault probability.
    pub fault_prob: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output capture path.
    pub out: String,
}

impl Default for RecordConfig {
    fn default() -> Self {
        RecordConfig {
            workload: "smallbank".to_string(),
            level: IsolationLevel::Serializable,
            threads: 4,
            txns: 500,
            scale: 1,
            fault: None,
            fault_prob: 0.05,
            seed: 42,
            out: "capture.jsonl".to_string(),
        }
    }
}

/// Configuration of `leopard verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyConfig {
    /// Capture file to audit.
    pub file: String,
    /// The isolation level the DBMS promised.
    pub level: IsolationLevel,
    /// Clock-skew bound (ns).
    pub skew_bound: u64,
    /// Disable garbage collection (keeps everything; for debugging).
    pub no_gc: bool,
    /// Run the verifier even when history preflight reports errors.
    pub skip_preflight: bool,
    /// Degraded mode: quarantine ill-formed traces and demote reads that a
    /// missing delivery could explain instead of reporting them.
    pub degraded: bool,
    /// Resume verification from this checkpoint file.
    pub resume: Option<String>,
    /// Write a checkpoint of the final verifier state to this path.
    pub checkpoint: Option<String>,
    /// Also write intermediate checkpoints every N ingested traces.
    pub checkpoint_every: Option<u64>,
    /// Memory budget in bytes (`None` = unlimited).
    pub mem_budget: Option<u64>,
    /// Verifier worker shards (1 = single-threaded).
    pub shards: usize,
    /// Spill directory for cold verifier state (`None` = in-memory only).
    pub spill_dir: Option<String>,
    /// Spill page-cache capacity in pages (`None` = default).
    pub spill_cache_pages: Option<usize>,
    /// Emit the verdict and resource counters as JSON.
    pub json: bool,
    /// Enable observability and write Prometheus metrics to this path.
    pub metrics_out: Option<String>,
    /// Enable observability and write a Chrome trace-event file here.
    pub trace_out: Option<String>,
    /// Rewrite `metrics_out` every this many seconds during the run.
    pub metrics_interval: Option<u64>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            file: String::new(),
            level: IsolationLevel::Serializable,
            skew_bound: 0,
            no_gc: false,
            skip_preflight: false,
            degraded: false,
            resume: None,
            checkpoint: None,
            checkpoint_every: None,
            mem_budget: None,
            shards: 1,
            spill_dir: None,
            spill_cache_pages: None,
            json: false,
            metrics_out: None,
            trace_out: None,
            metrics_interval: None,
        }
    }
}

/// Configuration of `leopard chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Workload name.
    pub workload: String,
    /// Engine and verifier isolation level.
    pub level: IsolationLevel,
    /// Client threads.
    pub threads: usize,
    /// Transactions per client.
    pub txns: u64,
    /// Workload scale factor.
    pub scale: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Fault-injection seed (chaos plan).
    pub chaos_seed: u64,
    /// Probability a transaction's client is killed mid-transaction.
    pub kill_prob: f64,
    /// Probability a client stalls mid-transaction.
    pub stall_prob: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Probability a trace delivery is dropped.
    pub drop_prob: f64,
    /// Probability a trace delivery is duplicated.
    pub dup_prob: f64,
    /// Probability a clock reading triggers a skew burst.
    pub skew_burst_prob: f64,
    /// Nanoseconds added per skew burst.
    pub skew_magnitude: u64,
    /// Attempts per transaction (1 = no retry).
    pub retry_attempts: u32,
    /// Base exponential backoff in milliseconds.
    pub retry_backoff_ms: u64,
    /// Jitter fraction around each backoff sleep (0 = deterministic).
    pub retry_jitter: f64,
    /// Watermark-stall eviction timeout in milliseconds.
    pub evict_timeout_ms: u64,
    /// Write online checkpoints to this path.
    pub checkpoint: Option<String>,
    /// Checkpoint every N dispatched traces.
    pub checkpoint_every: Option<u64>,
    /// Memory budget in bytes (`None` = unlimited).
    pub mem_budget: Option<u64>,
    /// Verifier worker shards (1 = single-threaded).
    pub shards: usize,
    /// Spill directory for cold verifier state (`None` = in-memory only).
    pub spill_dir: Option<String>,
    /// Spill page-cache capacity in pages (`None` = default).
    pub spill_cache_pages: Option<usize>,
    /// Probability of each seeded disk fault in the spill tier.
    pub disk_fault_prob: f64,
    /// Spill tier ENOSPC threshold in bytes (`None` = unlimited disk).
    pub disk_enospc_after: Option<u64>,
    /// Emit the run summary as JSON.
    pub json: bool,
    /// Enable observability and write Prometheus metrics to this path.
    pub metrics_out: Option<String>,
    /// Enable observability and write a Chrome trace-event file here.
    pub trace_out: Option<String>,
    /// Rewrite `metrics_out` every this many seconds during the run.
    pub metrics_interval: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            workload: "blindw-rw".to_string(),
            level: IsolationLevel::Serializable,
            threads: 4,
            txns: 200,
            scale: 1,
            seed: 42,
            chaos_seed: 7,
            kill_prob: 0.05,
            stall_prob: 0.05,
            stall_ms: 3,
            drop_prob: 0.02,
            dup_prob: 0.02,
            skew_burst_prob: 0.0,
            skew_magnitude: 0,
            retry_attempts: 3,
            retry_backoff_ms: 1,
            retry_jitter: 0.0,
            evict_timeout_ms: 1000,
            checkpoint: None,
            checkpoint_every: None,
            mem_budget: None,
            shards: 1,
            spill_dir: None,
            spill_cache_pages: None,
            disk_fault_prob: 0.0,
            disk_enospc_after: None,
            json: false,
            metrics_out: None,
            trace_out: None,
            metrics_interval: None,
        }
    }
}

/// Configuration of `leopard lint-history`.
#[derive(Debug, Clone, PartialEq)]
pub struct LintHistoryConfig {
    /// Capture file to analyze.
    pub file: String,
    /// Emit the report as JSON instead of human-readable text.
    pub json: bool,
}

/// Configuration of `leopard oracle`.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// Workload of the clean base capture.
    pub workload: String,
    /// Preloaded rows of the clean run.
    pub rows: u64,
    /// Clients of the clean run.
    pub clients: usize,
    /// Transactions per client.
    pub txns: u64,
    /// Clean-run RNG seed.
    pub seed: u64,
    /// Emit the verdict matrix as JSON instead of the table.
    pub json: bool,
    /// Also write the corpus (mutated captures + matrix.json + manifest)
    /// into this directory.
    pub out_dir: Option<String>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            workload: "blindw-rw".to_string(),
            rows: 32,
            clients: 2,
            txns: 8,
            seed: 42,
            json: false,
            out_dir: None,
        }
    }
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_level(s: &str) -> Result<IsolationLevel, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "rc" | "read-committed" => Ok(IsolationLevel::ReadCommitted),
        "rr" | "repeatable-read" => Ok(IsolationLevel::RepeatableRead),
        "si" | "snapshot-isolation" => Ok(IsolationLevel::SnapshotIsolation),
        "sr" | "serializable" => Ok(IsolationLevel::Serializable),
        other => Err(ParseError(format!("unknown isolation level `{other}`"))),
    }
}

fn parse_fault(s: &str) -> Result<FaultKind, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "dirty-read" => Ok(FaultKind::DirtyRead),
        "stale-snapshot" => Ok(FaultKind::StaleSnapshot),
        "skip-lock" => Ok(FaultKind::SkipLock),
        "lost-update" => Ok(FaultKind::AllowLostUpdate),
        "skip-certifier" => Ok(FaultKind::SkipCertifier),
        "first-write-no-lock" => Ok(FaultKind::FirstWriteNoLock),
        "phantom-extra-version" => Ok(FaultKind::PhantomExtraVersion),
        other => Err(ParseError(format!("unknown fault `{other}`"))),
    }
}

fn want<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, ParseError> {
    let v = value.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| ParseError(format!("invalid value `{v}` for {flag}")))
}

/// Parses `argv` (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = argv.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "catalog" => Ok(Command::Catalog),
        "record" => {
            let mut cfg = RecordConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workload" => {
                        cfg.workload = want::<String>(flag, it.next())?;
                    }
                    "--level" => cfg.level = parse_level(&want::<String>(flag, it.next())?)?,
                    "--threads" => cfg.threads = want(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--scale" => cfg.scale = want(flag, it.next())?,
                    "--fault" => cfg.fault = Some(parse_fault(&want::<String>(flag, it.next())?)?),
                    "--fault-prob" => cfg.fault_prob = want(flag, it.next())?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--out" => cfg.out = want::<String>(flag, it.next())?,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.threads == 0 {
                return Err(ParseError("--threads must be at least 1".to_string()));
            }
            Ok(Command::Record(cfg))
        }
        "verify" => {
            let mut file = None;
            let mut cfg = VerifyConfig::default();
            let mut it = argv[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--level" => cfg.level = parse_level(&want::<String>(arg, it.next())?)?,
                    "--skew-bound" => cfg.skew_bound = want(arg, it.next())?,
                    "--no-gc" => cfg.no_gc = true,
                    "--skip-preflight" => cfg.skip_preflight = true,
                    "--degraded" => cfg.degraded = true,
                    "--resume" => cfg.resume = Some(want::<String>(arg, it.next())?),
                    "--checkpoint" => cfg.checkpoint = Some(want::<String>(arg, it.next())?),
                    "--checkpoint-every" => cfg.checkpoint_every = Some(want(arg, it.next())?),
                    "--mem-budget" => cfg.mem_budget = Some(want(arg, it.next())?),
                    "--shards" => cfg.shards = want(arg, it.next())?,
                    "--spill-dir" => cfg.spill_dir = Some(want::<String>(arg, it.next())?),
                    "--spill-cache-pages" => cfg.spill_cache_pages = Some(want(arg, it.next())?),
                    "--json" => cfg.json = true,
                    "--metrics-out" => cfg.metrics_out = Some(want::<String>(arg, it.next())?),
                    "--trace-out" => cfg.trace_out = Some(want::<String>(arg, it.next())?),
                    "--metrics-interval" => cfg.metrics_interval = Some(want(arg, it.next())?),
                    flag if flag.starts_with("--") => {
                        return Err(ParseError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(ParseError("more than one capture file given".into()));
                        }
                    }
                }
            }
            cfg.file = file.ok_or_else(|| ParseError("verify needs a capture file".into()))?;
            if cfg.checkpoint_every == Some(0) {
                return Err(ParseError("--checkpoint-every must be at least 1".into()));
            }
            if cfg.checkpoint_every.is_some() && cfg.checkpoint.is_none() {
                return Err(ParseError(
                    "--checkpoint-every needs --checkpoint <FILE>".into(),
                ));
            }
            if cfg.mem_budget == Some(0) {
                return Err(ParseError("--mem-budget must be at least 1 byte".into()));
            }
            if cfg.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            if cfg.metrics_interval == Some(0) {
                return Err(ParseError("--metrics-interval must be at least 1".into()));
            }
            if cfg.metrics_interval.is_some() && cfg.metrics_out.is_none() {
                return Err(ParseError(
                    "--metrics-interval needs --metrics-out <FILE>".into(),
                ));
            }
            if cfg.spill_cache_pages == Some(0) {
                return Err(ParseError("--spill-cache-pages must be at least 1".into()));
            }
            if cfg.spill_cache_pages.is_some() && cfg.spill_dir.is_none() {
                return Err(ParseError(
                    "--spill-cache-pages needs --spill-dir <DIR>".into(),
                ));
            }
            Ok(Command::Verify(cfg))
        }
        "chaos" => {
            let mut cfg = ChaosConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workload" => cfg.workload = want::<String>(flag, it.next())?,
                    "--level" => cfg.level = parse_level(&want::<String>(flag, it.next())?)?,
                    "--threads" => cfg.threads = want(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--scale" => cfg.scale = want(flag, it.next())?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--chaos-seed" => cfg.chaos_seed = want(flag, it.next())?,
                    "--kill-prob" => cfg.kill_prob = want(flag, it.next())?,
                    "--stall-prob" => cfg.stall_prob = want(flag, it.next())?,
                    "--stall-ms" => cfg.stall_ms = want(flag, it.next())?,
                    "--drop-prob" => cfg.drop_prob = want(flag, it.next())?,
                    "--dup-prob" => cfg.dup_prob = want(flag, it.next())?,
                    "--skew-burst-prob" => cfg.skew_burst_prob = want(flag, it.next())?,
                    "--skew-magnitude" => cfg.skew_magnitude = want(flag, it.next())?,
                    "--retry-attempts" => cfg.retry_attempts = want(flag, it.next())?,
                    "--retry-backoff-ms" => cfg.retry_backoff_ms = want(flag, it.next())?,
                    "--retry-jitter" => cfg.retry_jitter = want(flag, it.next())?,
                    "--evict-timeout-ms" => cfg.evict_timeout_ms = want(flag, it.next())?,
                    "--checkpoint" => cfg.checkpoint = Some(want::<String>(flag, it.next())?),
                    "--checkpoint-every" => cfg.checkpoint_every = Some(want(flag, it.next())?),
                    "--mem-budget" => cfg.mem_budget = Some(want(flag, it.next())?),
                    "--shards" => cfg.shards = want(flag, it.next())?,
                    "--spill-dir" => cfg.spill_dir = Some(want::<String>(flag, it.next())?),
                    "--spill-cache-pages" => cfg.spill_cache_pages = Some(want(flag, it.next())?),
                    "--disk-fault-prob" => cfg.disk_fault_prob = want(flag, it.next())?,
                    "--disk-enospc-after" => cfg.disk_enospc_after = Some(want(flag, it.next())?),
                    "--json" => cfg.json = true,
                    "--metrics-out" => cfg.metrics_out = Some(want::<String>(flag, it.next())?),
                    "--trace-out" => cfg.trace_out = Some(want::<String>(flag, it.next())?),
                    "--metrics-interval" => cfg.metrics_interval = Some(want(flag, it.next())?),
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.threads == 0 {
                return Err(ParseError("--threads must be at least 1".to_string()));
            }
            if cfg.mem_budget == Some(0) {
                return Err(ParseError("--mem-budget must be at least 1 byte".into()));
            }
            if cfg.shards == 0 {
                return Err(ParseError("--shards must be at least 1".into()));
            }
            for (name, p) in [
                ("--kill-prob", cfg.kill_prob),
                ("--stall-prob", cfg.stall_prob),
                ("--drop-prob", cfg.drop_prob),
                ("--dup-prob", cfg.dup_prob),
                ("--skew-burst-prob", cfg.skew_burst_prob),
                ("--retry-jitter", cfg.retry_jitter),
                ("--disk-fault-prob", cfg.disk_fault_prob),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ParseError(format!("{name} must be within 0..1")));
                }
            }
            if cfg.checkpoint_every == Some(0) {
                return Err(ParseError("--checkpoint-every must be at least 1".into()));
            }
            if cfg.checkpoint_every.is_some() && cfg.checkpoint.is_none() {
                return Err(ParseError(
                    "--checkpoint-every needs --checkpoint <FILE>".into(),
                ));
            }
            if cfg.metrics_interval == Some(0) {
                return Err(ParseError("--metrics-interval must be at least 1".into()));
            }
            if cfg.metrics_interval.is_some() && cfg.metrics_out.is_none() {
                return Err(ParseError(
                    "--metrics-interval needs --metrics-out <FILE>".into(),
                ));
            }
            if cfg.spill_cache_pages == Some(0) {
                return Err(ParseError("--spill-cache-pages must be at least 1".into()));
            }
            if cfg.spill_cache_pages.is_some() && cfg.spill_dir.is_none() {
                return Err(ParseError(
                    "--spill-cache-pages needs --spill-dir <DIR>".into(),
                ));
            }
            if (cfg.disk_fault_prob > 0.0 || cfg.disk_enospc_after.is_some())
                && cfg.spill_dir.is_none()
            {
                return Err(ParseError(
                    "--disk-fault-prob/--disk-enospc-after need --spill-dir <DIR>".into(),
                ));
            }
            Ok(Command::Chaos(cfg))
        }
        "lint-history" => {
            let mut file = None;
            let mut json = false;
            let mut it = argv[1..].iter();
            for arg in &mut it {
                match arg.as_str() {
                    "--json" => json = true,
                    flag if flag.starts_with("--") => {
                        return Err(ParseError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(ParseError("more than one capture file given".into()));
                        }
                    }
                }
            }
            let file =
                file.ok_or_else(|| ParseError("lint-history needs a capture file".into()))?;
            Ok(Command::LintHistory(LintHistoryConfig { file, json }))
        }
        "serve" => {
            let mut cfg = ServeCliConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--listen" => cfg.listen = want::<String>(flag, it.next())?,
                    "--control" => cfg.control = Some(want::<String>(flag, it.next())?),
                    "--dir" => cfg.dir = want::<String>(flag, it.next())?,
                    "--checkpoint-every" => cfg.checkpoint_every = want(flag, it.next())?,
                    "--global-budget" => cfg.global_budget = want(flag, it.next())?,
                    "--spill-dir" => cfg.spill_dir = Some(want::<String>(flag, it.next())?),
                    "--spill-cache-pages" => cfg.spill_cache_pages = Some(want(flag, it.next())?),
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.checkpoint_every == 0 {
                return Err(ParseError("--checkpoint-every must be at least 1".into()));
            }
            if cfg.spill_cache_pages == Some(0) {
                return Err(ParseError("--spill-cache-pages must be at least 1".into()));
            }
            if cfg.spill_cache_pages.is_some() && cfg.spill_dir.is_none() {
                return Err(ParseError(
                    "--spill-cache-pages needs --spill-dir <DIR>".into(),
                ));
            }
            for ep in std::iter::once(&cfg.listen).chain(cfg.control.as_ref()) {
                if let Err(e) = leopard_core::Endpoint::parse(ep) {
                    return Err(ParseError(e));
                }
            }
            Ok(Command::Serve(cfg))
        }
        "ingest" => {
            let mut file = None;
            let mut cfg = IngestConfig::default();
            let mut it = argv[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--to" => cfg.to = want::<String>(arg, it.next())?,
                    "--stream" => cfg.stream = Some(want::<String>(arg, it.next())?),
                    "--level" => cfg.level = parse_level(&want::<String>(arg, it.next())?)?,
                    "--mem-budget" => cfg.mem_budget = want(arg, it.next())?,
                    "--json" => cfg.json = true,
                    flag if flag.starts_with("--") => {
                        return Err(ParseError(format!("unknown flag `{flag}`")))
                    }
                    path => {
                        if file.replace(path.to_string()).is_some() {
                            return Err(ParseError("more than one capture file given".into()));
                        }
                    }
                }
            }
            cfg.file = file.ok_or_else(|| ParseError("ingest needs a capture file".into()))?;
            if let Err(e) = leopard_core::Endpoint::parse(&cfg.to) {
                return Err(ParseError(e));
            }
            Ok(Command::Ingest(cfg))
        }
        "soak" => {
            let mut cfg = SoakCliConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--to" => cfg.to = want::<String>(flag, it.next())?,
                    "--streams" => cfg.streams = want(flag, it.next())?,
                    "--workload" => cfg.workload = want::<String>(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--clients" => cfg.clients = want(flag, it.next())?,
                    "--level" => cfg.level = parse_level(&want::<String>(flag, it.next())?)?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--kill-prob" => cfg.kill_prob = want(flag, it.next())?,
                    "--dup-prob" => cfg.dup_prob = want(flag, it.next())?,
                    "--stall-prob" => cfg.stall_prob = want(flag, it.next())?,
                    "--stall-ms" => cfg.stall_ms = want(flag, it.next())?,
                    "--retry-attempts" => cfg.retry_attempts = want(flag, it.next())?,
                    "--retry-backoff-ms" => cfg.retry_backoff_ms = want(flag, it.next())?,
                    "--retry-jitter" => cfg.retry_jitter = want(flag, it.next())?,
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.streams == 0 || cfg.clients == 0 {
                return Err(ParseError(
                    "--streams and --clients must be at least 1".into(),
                ));
            }
            for (name, p) in [
                ("--kill-prob", cfg.kill_prob),
                ("--dup-prob", cfg.dup_prob),
                ("--stall-prob", cfg.stall_prob),
                ("--retry-jitter", cfg.retry_jitter),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ParseError(format!("{name} must be within 0..1")));
                }
            }
            if let Err(e) = leopard_core::Endpoint::parse(&cfg.to) {
                return Err(ParseError(e));
            }
            Ok(Command::Soak(cfg))
        }
        "oracle" => {
            let mut cfg = OracleConfig::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workload" => cfg.workload = want::<String>(flag, it.next())?,
                    "--rows" => cfg.rows = want(flag, it.next())?,
                    "--clients" => cfg.clients = want(flag, it.next())?,
                    "--txns" => cfg.txns = want(flag, it.next())?,
                    "--seed" => cfg.seed = want(flag, it.next())?,
                    "--json" => cfg.json = true,
                    "--out-dir" => cfg.out_dir = Some(want::<String>(flag, it.next())?),
                    other => return Err(ParseError(format!("unknown flag `{other}`"))),
                }
            }
            if cfg.clients == 0 {
                return Err(ParseError("--clients must be at least 1".to_string()));
            }
            Ok(Command::Oracle(cfg))
        }
        other => Err(ParseError(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
    }

    #[test]
    fn record_defaults_and_overrides() {
        let cmd = parse_args(&args(
            "record --workload tpcc --level rc --threads 8 --txns 100 --fault skip-lock --out t.jsonl",
        ))
        .unwrap();
        let Command::Record(cfg) = cmd else { panic!() };
        assert_eq!(cfg.workload, "tpcc");
        assert_eq!(cfg.level, IsolationLevel::ReadCommitted);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.txns, 100);
        assert_eq!(cfg.fault, Some(FaultKind::SkipLock));
        assert_eq!(cfg.out, "t.jsonl");
    }

    #[test]
    fn verify_requires_a_file() {
        assert!(parse_args(&args("verify --level sr")).is_err());
        let cmd = parse_args(&args("verify cap.jsonl --level si --skew-bound 500")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.file, "cap.jsonl");
        assert_eq!(cfg.level, IsolationLevel::SnapshotIsolation);
        assert_eq!(cfg.skew_bound, 500);
        assert!(!cfg.skip_preflight);
        let cmd = parse_args(&args("verify cap.jsonl --skip-preflight")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert!(cfg.skip_preflight);
    }

    #[test]
    fn verify_chaos_flags_parse() {
        let cmd = parse_args(&args(
            "verify cap.jsonl --degraded --resume a.ckpt --checkpoint b.ckpt --checkpoint-every 64",
        ))
        .unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert!(cfg.degraded);
        assert_eq!(cfg.resume.as_deref(), Some("a.ckpt"));
        assert_eq!(cfg.checkpoint.as_deref(), Some("b.ckpt"));
        assert_eq!(cfg.checkpoint_every, Some(64));
        // --checkpoint-every without a checkpoint path is meaningless.
        assert!(parse_args(&args("verify cap.jsonl --checkpoint-every 64")).is_err());
        assert!(parse_args(&args(
            "verify cap.jsonl --checkpoint b --checkpoint-every 0"
        ))
        .is_err());
    }

    #[test]
    fn verify_and_chaos_mem_budget_parse() {
        let cmd = parse_args(&args("verify cap.jsonl --mem-budget 1048576 --json")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.mem_budget, Some(1_048_576));
        assert!(cfg.json);
        let cmd = parse_args(&args("verify cap.jsonl")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.mem_budget, None);
        assert!(!cfg.json);
        let cmd = parse_args(&args("chaos --mem-budget 65536")).unwrap();
        let Command::Chaos(cfg) = cmd else { panic!() };
        assert_eq!(cfg.mem_budget, Some(65_536));
        // A zero budget would shed everything; reject it loudly.
        assert!(parse_args(&args("verify cap.jsonl --mem-budget 0")).is_err());
        assert!(parse_args(&args("chaos --mem-budget 0")).is_err());
    }

    #[test]
    fn verify_and_chaos_shards_parse() {
        let cmd = parse_args(&args("verify cap.jsonl --shards 4")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.shards, 4);
        let cmd = parse_args(&args("verify cap.jsonl")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.shards, 1);
        let cmd = parse_args(&args("chaos --shards 8")).unwrap();
        let Command::Chaos(cfg) = cmd else { panic!() };
        assert_eq!(cfg.shards, 8);
        // Zero shards means no verifier at all; reject loudly.
        assert!(parse_args(&args("verify cap.jsonl --shards 0")).is_err());
        assert!(parse_args(&args("chaos --shards 0")).is_err());
    }

    #[test]
    fn verify_and_chaos_observability_flags_parse() {
        let cmd = parse_args(&args(
            "verify cap.jsonl --metrics-out m.prom --trace-out t.json --metrics-interval 5",
        ))
        .unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(cfg.trace_out.as_deref(), Some("t.json"));
        assert_eq!(cfg.metrics_interval, Some(5));
        let cmd = parse_args(&args("verify cap.jsonl")).unwrap();
        let Command::Verify(cfg) = cmd else { panic!() };
        assert_eq!(cfg.metrics_out, None);
        assert_eq!(cfg.trace_out, None);
        assert_eq!(cfg.metrics_interval, None);
        let cmd = parse_args(&args("chaos --metrics-out m.prom --trace-out t.json")).unwrap();
        let Command::Chaos(cfg) = cmd else { panic!() };
        assert_eq!(cfg.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(cfg.trace_out.as_deref(), Some("t.json"));
        // A periodic rewrite needs somewhere to write to, and a zero
        // interval would spin.
        assert!(parse_args(&args("verify cap.jsonl --metrics-interval 5")).is_err());
        assert!(parse_args(&args("chaos --metrics-interval 5")).is_err());
        assert!(parse_args(&args(
            "verify cap.jsonl --metrics-out m.prom --metrics-interval 0"
        ))
        .is_err());
    }

    #[test]
    fn chaos_defaults_and_overrides() {
        let cmd = parse_args(&args("chaos")).unwrap();
        assert_eq!(cmd, Command::Chaos(ChaosConfig::default()));
        let cmd = parse_args(&args(
            "chaos --workload smallbank --level si --threads 2 --txns 50 --chaos-seed 9 \
             --kill-prob 0.1 --stall-prob 0.2 --stall-ms 5 --drop-prob 0.03 --dup-prob 0.04 \
             --skew-burst-prob 0.01 --skew-magnitude 500 --retry-attempts 5 \
             --retry-backoff-ms 2 --evict-timeout-ms 250 --checkpoint c.ckpt \
             --checkpoint-every 128 --json",
        ))
        .unwrap();
        let Command::Chaos(cfg) = cmd else { panic!() };
        assert_eq!(cfg.workload, "smallbank");
        assert_eq!(cfg.level, IsolationLevel::SnapshotIsolation);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.txns, 50);
        assert_eq!(cfg.chaos_seed, 9);
        assert_eq!(cfg.kill_prob, 0.1);
        assert_eq!(cfg.stall_ms, 5);
        assert_eq!(cfg.skew_magnitude, 500);
        assert_eq!(cfg.retry_attempts, 5);
        assert_eq!(cfg.evict_timeout_ms, 250);
        assert_eq!(cfg.checkpoint.as_deref(), Some("c.ckpt"));
        assert_eq!(cfg.checkpoint_every, Some(128));
        assert!(cfg.json);
        assert!(parse_args(&args("chaos --kill-prob 1.5")).is_err());
        assert!(parse_args(&args("chaos --threads 0")).is_err());
        assert!(parse_args(&args("chaos --bogus")).is_err());
    }

    #[test]
    fn lint_history_parses() {
        assert!(parse_args(&args("lint-history")).is_err());
        assert!(parse_args(&args("lint-history a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&args("lint-history a.jsonl --bogus")).is_err());
        let cmd = parse_args(&args("lint-history cap.jsonl --json")).unwrap();
        let Command::LintHistory(cfg) = cmd else {
            panic!()
        };
        assert_eq!(cfg.file, "cap.jsonl");
        assert!(cfg.json);
    }

    #[test]
    fn oracle_defaults_and_overrides() {
        let cmd = parse_args(&args("oracle")).unwrap();
        assert_eq!(cmd, Command::Oracle(OracleConfig::default()));
        let cmd = parse_args(&args(
            "oracle --workload ycsb --rows 64 --clients 3 --txns 12 --seed 7 --json --out-dir corpus",
        ))
        .unwrap();
        let Command::Oracle(cfg) = cmd else { panic!() };
        assert_eq!(cfg.workload, "ycsb");
        assert_eq!(cfg.rows, 64);
        assert_eq!(cfg.clients, 3);
        assert_eq!(cfg.txns, 12);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.json);
        assert_eq!(cfg.out_dir.as_deref(), Some("corpus"));
        assert!(parse_args(&args("oracle --clients 0")).is_err());
        assert!(parse_args(&args("oracle --bogus")).is_err());
    }

    #[test]
    fn chaos_retry_jitter_parses_and_validates() {
        let cmd = parse_args(&args("chaos --retry-jitter 0.3")).unwrap();
        let Command::Chaos(cfg) = cmd else { panic!() };
        assert_eq!(cfg.retry_jitter, 0.3);
        assert_eq!(ChaosConfig::default().retry_jitter, 0.0);
        assert!(parse_args(&args("chaos --retry-jitter 1.5")).is_err());
        assert!(parse_args(&args("chaos --retry-jitter -0.1")).is_err());
    }

    #[test]
    fn serve_defaults_and_overrides() {
        let cmd = parse_args(&args("serve")).unwrap();
        assert_eq!(cmd, Command::Serve(ServeCliConfig::default()));
        let cmd = parse_args(&args(
            "serve --listen tcp:127.0.0.1:7878 --control unix:/tmp/c.sock --dir state \
             --checkpoint-every 64 --global-budget 1048576",
        ))
        .unwrap();
        let Command::Serve(cfg) = cmd else { panic!() };
        assert_eq!(cfg.listen, "tcp:127.0.0.1:7878");
        assert_eq!(cfg.control.as_deref(), Some("unix:/tmp/c.sock"));
        assert_eq!(cfg.dir, "state");
        assert_eq!(cfg.checkpoint_every, 64);
        assert_eq!(cfg.global_budget, 1_048_576);
        assert!(parse_args(&args("serve --checkpoint-every 0")).is_err());
        assert!(parse_args(&args("serve --listen bogus")).is_err());
        assert!(parse_args(&args("serve --control udp:x")).is_err());
        assert!(parse_args(&args("serve --bogus")).is_err());
    }

    #[test]
    fn ingest_requires_a_file_and_valid_endpoint() {
        assert!(parse_args(&args("ingest")).is_err());
        assert!(parse_args(&args("ingest a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&args("ingest a.jsonl --to bogus")).is_err());
        let cmd = parse_args(&args(
            "ingest cap.jsonl --to unix:/tmp/i.sock --stream t1 --level si --mem-budget 4096 --json",
        ))
        .unwrap();
        let Command::Ingest(cfg) = cmd else { panic!() };
        assert_eq!(cfg.file, "cap.jsonl");
        assert_eq!(cfg.to, "unix:/tmp/i.sock");
        assert_eq!(cfg.stream.as_deref(), Some("t1"));
        assert_eq!(cfg.level, IsolationLevel::SnapshotIsolation);
        assert_eq!(cfg.mem_budget, 4096);
        assert!(cfg.json);
    }

    #[test]
    fn soak_defaults_and_overrides() {
        let cmd = parse_args(&args("soak")).unwrap();
        assert_eq!(cmd, Command::Soak(SoakCliConfig::default()));
        let cmd = parse_args(&args(
            "soak --to tcp:127.0.0.1:9000 --streams 8 --workload ycsb --txns 30 --clients 2 \
             --level rr --seed 5 --kill-prob 0.1 --dup-prob 0.1 --stall-prob 0.05 --stall-ms 1 \
             --retry-attempts 50 --retry-backoff-ms 2 --retry-jitter 0.25",
        ))
        .unwrap();
        let Command::Soak(cfg) = cmd else { panic!() };
        assert_eq!(cfg.streams, 8);
        assert_eq!(cfg.workload, "ycsb");
        assert_eq!(cfg.level, IsolationLevel::RepeatableRead);
        assert_eq!(cfg.kill_prob, 0.1);
        assert_eq!(cfg.retry_jitter, 0.25);
        assert!(parse_args(&args("soak --streams 0")).is_err());
        assert!(parse_args(&args("soak --kill-prob 2.0")).is_err());
        assert!(parse_args(&args("soak --to bogus")).is_err());
    }

    #[test]
    fn bad_flags_are_rejected_with_context() {
        let err = parse_args(&args("record --bogus 3")).unwrap_err();
        assert!(err.0.contains("--bogus"));
        let err = parse_args(&args("record --threads zero")).unwrap_err();
        assert!(err.0.contains("zero"));
        let err = parse_args(&args("record --threads 0")).unwrap_err();
        assert!(err.0.contains("at least 1"));
        let err = parse_args(&args("frobnicate")).unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn all_levels_and_faults_parse() {
        for (s, l) in [
            ("rc", IsolationLevel::ReadCommitted),
            ("rr", IsolationLevel::RepeatableRead),
            ("si", IsolationLevel::SnapshotIsolation),
            ("sr", IsolationLevel::Serializable),
        ] {
            assert_eq!(parse_level(s).unwrap(), l);
        }
        for s in [
            "dirty-read",
            "stale-snapshot",
            "skip-lock",
            "lost-update",
            "skip-certifier",
            "first-write-no-lock",
            "phantom-extra-version",
        ] {
            assert!(parse_fault(s).is_ok(), "{s}");
        }
        assert!(parse_level("chaos").is_err());
        assert!(parse_fault("chaos").is_err());
    }
}
