//! The `leopard` command-line tool. See `leopard help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(leopard_cli::run(&argv, &mut stdout));
}
