//! Minimal SIGINT/SIGTERM handling for graceful shutdown, with no
//! dependency on a libc crate (the workspace builds offline).
//!
//! The handler only flips an [`AtomicBool`] — the one operation that is
//! async-signal-safe — and the long-running commands poll
//! [`termination_requested`] at their loop boundaries to flush final
//! checkpoints and metrics snapshots before exiting. A second Ctrl-C
//! still kills the process the hard way: the handler is installed with
//! the system default as fallback only once, so the OS default
//! (terminate) is restored semantics-wise by the process simply exiting
//! on the flushed path.
#![allow(unsafe_code)] // the whole point of this module: one libc call

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; read by command loops.
static TERM: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)` from the linked system libc.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM flag-setter. Idempotent; safe to call
/// from every long-running command.
pub fn install_termination_handler() {
    // SAFETY: `signal` is the POSIX API; the handler only performs an
    // atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGINT, on_term as *const () as usize);
        signal(SIGTERM, on_term as *const () as usize);
    }
}

/// `true` once SIGINT or SIGTERM has been received.
#[must_use]
pub fn termination_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}
