//! Implementations of the CLI subcommands.

use crate::args::{LintHistoryConfig, OracleConfig, RecordConfig, VerifyConfig};
use leopard_core::{
    CaptureHeader, CaptureReader, CaptureWriter, IsolationLevel, PreflightAnalyzer,
    PreflightConfig, PreflightReport, Verifier, VerifierConfig, CAPTURE_VERSION,
};
use leopard_db::{Database, DbConfig, FaultPlan};
use leopard_oracle::{corpus_files, run_matrix, CleanRunSpec, Schedule};
use leopard_workloads::{bundled_workload, preload_database, run_collect, RunLimit};
use std::io::Write;

/// `leopard record`: run the bundled engine + workload, write a capture.
pub fn record(cfg: &RecordConfig, out: &mut dyn Write) -> i32 {
    let (proto, gens) = match bundled_workload(&cfg.workload, cfg.scale, cfg.threads) {
        Ok(x) => x,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    let faults = match cfg.fault {
        Some(kind) => FaultPlan::with_probability(kind, cfg.fault_prob, cfg.seed),
        None => FaultPlan::none(),
    };
    let db = Database::with_faults(DbConfig::at(cfg.level), faults);
    let preload = preload_database(&db, proto.as_ref());
    let run = run_collect(&db, gens, RunLimit::Txns(cfg.txns), cfg.seed);

    let header = CaptureHeader {
        version: CAPTURE_VERSION,
        description: format!(
            "{} scale={} level={} threads={} fault={:?}",
            cfg.workload, cfg.scale, cfg.level, cfg.threads, cfg.fault
        ),
        preload,
    };
    let file = match std::fs::File::create(&cfg.out) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot create {}: {e}", cfg.out);
            return 1;
        }
    };
    let mut writer = match CaptureWriter::new(file, &header) {
        Ok(w) => w,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    for trace in run.merged_sorted() {
        if let Err(e) = writer.write(&trace) {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    }
    match writer.finish() {
        Ok(n) => {
            let _ = writeln!(
                out,
                "recorded {} traces ({} committed, {} aborted txns) to {}",
                n, run.stats.committed, run.stats.aborted, cfg.out
            );
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

/// Streams a capture through the preflight analyzer. `Err` carries the
/// process exit code for I/O or format failures.
fn preflight_capture(path: &str, out: &mut dyn Write) -> Result<PreflightReport, i32> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open {path}: {e}");
            return Err(1);
        }
    };
    let mut reader = match CaptureReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return Err(1);
        }
    };
    let mut analyzer = PreflightAnalyzer::new(PreflightConfig::default());
    for &(k, v) in &reader.header().preload.clone() {
        analyzer.preload(k, v);
    }
    loop {
        match reader.next_trace() {
            Ok(Some(trace)) => analyzer.observe(&trace),
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return Err(1);
            }
        }
    }
    Ok(analyzer.finish())
}

/// `leopard lint-history`: run only the preflight analysis on a capture.
pub fn lint_history(cfg: &LintHistoryConfig, out: &mut dyn Write) -> i32 {
    let report = match preflight_capture(&cfg.file, out) {
        Ok(r) => r,
        Err(code) => return code,
    };
    if cfg.json {
        match serde_json::to_string(&report) {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    } else {
        let _ = writeln!(out, "{report}");
    }
    if report.is_clean() {
        0
    } else {
        3
    }
}

/// `leopard verify`: audit a capture file.
pub fn verify(cfg: &VerifyConfig, out: &mut dyn Write) -> i32 {
    if cfg.skip_preflight {
        let _ = writeln!(out, "preflight: skipped (--skip-preflight)");
    } else {
        let report = match preflight_capture(&cfg.file, out) {
            Ok(r) => r,
            Err(code) => return code,
        };
        let _ = writeln!(out, "{report}");
        if report.has_errors() {
            let _ = writeln!(
                out,
                "refusing to verify: the history failed preflight, so verification \
                 verdicts would be untrustworthy (rerun with --skip-preflight to force)"
            );
            return 4;
        }
    }

    let file = match std::fs::File::open(&cfg.file) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open {}: {e}", cfg.file);
            return 1;
        }
    };
    let mut reader = match CaptureReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    let _ = writeln!(out, "capture: {}", reader.header().description);

    let mut vcfg = VerifierConfig::for_level(cfg.level);
    vcfg.clock_skew_bound = cfg.skew_bound;
    vcfg.gc = !cfg.no_gc;
    let mut verifier = Verifier::new(vcfg);
    for &(k, v) in &reader.header().preload.clone() {
        verifier.preload(k, v);
    }
    loop {
        match reader.next_trace() {
            Ok(Some(trace)) => verifier.process(&trace),
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    }
    let outcome = verifier.finish();
    let _ = writeln!(
        out,
        "verified {} traces / {} committed transactions at {}",
        outcome.counters.traces, outcome.counters.committed, cfg.level
    );
    let _ = writeln!(out, "{}", outcome.stats);
    if outcome.report.is_clean() {
        let _ = writeln!(out, "verdict: CLEAN");
        0
    } else {
        let _ = writeln!(out, "verdict: VIOLATIONS\n{}", outcome.report);
        3
    }
}

/// `leopard oracle`: run the anomaly-injection differential matrix and
/// optionally write the corpus to disk.
pub fn oracle(cfg: &OracleConfig, out: &mut dyn Write) -> i32 {
    let spec = CleanRunSpec {
        workload: cfg.workload.clone(),
        rows: cfg.rows,
        clients: cfg.clients,
        txns_per_client: cfg.txns,
        level: IsolationLevel::Serializable,
        seed: cfg.seed,
        tick: 100,
        schedule: Schedule::Serial,
    };
    let report = match run_matrix(&spec) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if cfg.json {
        match serde_json::to_string(&report) {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    } else {
        let _ = writeln!(out, "{report}");
    }
    if let Some(dir) = &cfg.out_dir {
        let files = match corpus_files(&spec) {
            Ok(f) => f,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            let _ = writeln!(out, "error: cannot create {dir}: {e}");
            return 1;
        }
        for (name, bytes) in &files {
            let path = std::path::Path::new(dir).join(name);
            if let Err(e) = std::fs::write(&path, bytes) {
                let _ = writeln!(out, "error: cannot write {}: {e}", path.display());
                return 1;
            }
        }
        let _ = writeln!(out, "wrote {} corpus files to {dir}", files.len());
    }
    if report.all_ok {
        0
    } else {
        3
    }
}

/// `leopard catalog`: print the Fig. 1 table.
pub fn catalog(out: &mut dyn Write) -> i32 {
    let _ = writeln!(
        out,
        "{:<38} {:<16} {:<4} {:>3} {:>7} {:>4} {:>6}",
        "DBMS", "CC", "IL", "ME", "CR", "FUW", "SC"
    );
    for profile in leopard_core::catalog() {
        for (level, m) in &profile.levels {
            let _ = writeln!(
                out,
                "{:<38} {:<16} {:<4} {:>3} {:>7} {:>4} {:>6}",
                profile.name,
                profile.concurrency_control,
                level.to_string(),
                if m.mutual_exclusion { "x" } else { "" },
                match m.consistent_read {
                    Some(leopard_core::SnapshotLevel::Transaction) => "x(txn)",
                    Some(leopard_core::SnapshotLevel::Statement) => "x(stmt)",
                    None => "",
                },
                if m.first_updater_wins { "x" } else { "" },
                match m.certifier {
                    Some(leopard_core::CertifierRule::SsiDangerousStructure) => "SSI",
                    Some(leopard_core::CertifierRule::MvtoTimestampOrder) => "MVTO",
                    Some(leopard_core::CertifierRule::AcyclicGraph) => "cycle",
                    None => "",
                },
            );
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{RecordConfig, VerifyConfig};
    use leopard_core::IsolationLevel;
    use leopard_db::FaultKind;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("leopard_cli_{name}_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn record_then_verify_clean_round_trip() {
        let path = tmp("clean");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 50,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                level: IsolationLevel::Serializable,
                skew_bound: 0,
                no_gc: false,
                skip_preflight: false,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("CLEAN"));

        let mut out = Vec::new();
        let code = lint_history(
            &LintHistoryConfig {
                file: path.clone(),
                json: false,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("preflight: clean"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulty_recording_fails_verification() {
        let path = tmp("faulty");
        let mut out = Vec::new();
        // PhantomExtraVersion resurrects a long-overwritten version in a
        // range read; the stale version is certainly garbage for the
        // snapshot, so detection does not depend on thread timing.
        let code = record(
            &RecordConfig {
                workload: "blindw-rw+".to_string(),
                level: IsolationLevel::RepeatableRead,
                threads: 4,
                txns: 400,
                scale: 1,
                fault: Some(FaultKind::PhantomExtraVersion),
                fault_prob: 0.20,
                seed: 9,
                out: path.clone(),
            },
            &mut out,
        );
        assert_eq!(code, 0);

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                level: IsolationLevel::RepeatableRead,
                skew_bound: 0,
                no_gc: false,
                skip_preflight: false,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("VIOLATIONS"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_missing_file_fails_cleanly() {
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: "/nonexistent/definitely/missing.jsonl".to_string(),
                level: IsolationLevel::Serializable,
                skew_bound: 0,
                no_gc: false,
                skip_preflight: false,
            },
            &mut out,
        );
        assert_eq!(code, 1);
    }

    #[test]
    fn verify_refuses_broken_history_unless_skipped() {
        use leopard_core::{CaptureHeader, CaptureWriter, TraceBuilder, CAPTURE_VERSION};

        // A history with a phantom read (H006): value 777 never written.
        let mut b = TraceBuilder::new();
        b.read(10, 12, 0, 1, vec![(1, 777)]);
        b.commit(13, 15, 0, 1);
        let header = CaptureHeader {
            version: CAPTURE_VERSION,
            description: "hand-built broken history".to_string(),
            preload: vec![],
        };
        let path = tmp("broken");
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = CaptureWriter::new(file, &header).unwrap();
        for trace in b.build() {
            writer.write(&trace).unwrap();
        }
        writer.finish().unwrap();

        let base = VerifyConfig {
            file: path.clone(),
            level: IsolationLevel::Serializable,
            skew_bound: 0,
            no_gc: false,
            skip_preflight: false,
        };
        let mut out = Vec::new();
        let code = verify(&base, &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 4, "{text}");
        assert!(text.contains("H006"));
        assert!(text.contains("refusing to verify"));

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                skip_preflight: true,
                ..base
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_ne!(code, 4, "{text}");
        assert!(text.contains("preflight: skipped"));

        let mut out = Vec::new();
        let code = lint_history(
            &LintHistoryConfig {
                file: path.clone(),
                json: true,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("\"H006\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oracle_matrix_agrees_and_writes_corpus() {
        let dir = std::env::temp_dir().join(format!("leopard_oracle_cmd_{}", std::process::id()));
        let mut out = Vec::new();
        let code = oracle(
            &crate::args::OracleConfig {
                out_dir: Some(dir.to_string_lossy().into_owned()),
                ..crate::args::OracleConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("all cells agree"), "{text}");
        for name in [
            "base.jsonl",
            "write-skew.jsonl",
            "matrix.json",
            "manifest.json",
        ] {
            assert!(dir.join(name).is_file(), "{name} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_json_output_is_parseable() {
        let mut out = Vec::new();
        let code = oracle(
            &crate::args::OracleConfig {
                json: true,
                ..crate::args::OracleConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"all_ok\":true"), "{text}");
        let mut out = Vec::new();
        assert_eq!(
            oracle(
                &crate::args::OracleConfig {
                    workload: "nope".to_string(),
                    ..crate::args::OracleConfig::default()
                },
                &mut out,
            ),
            2
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "nope".to_string(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 2);
    }

    #[test]
    fn catalog_prints_all_profiles() {
        let mut out = Vec::new();
        assert_eq!(catalog(&mut out), 0);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("PostgreSQL"));
        assert!(text.contains("CockroachDB"));
        assert!(text.contains("MVTO"));
    }
}
