//! Implementations of the CLI subcommands.

use crate::args::{
    ChaosConfig, IngestConfig, LintHistoryConfig, OracleConfig, RecordConfig, ServeCliConfig,
    SoakCliConfig, VerifyConfig,
};
use leopard_core::obs;
use leopard_core::{
    ingest_capture, Backpressure, CaptureHeader, CaptureReader, CaptureWriter, Checkpoint,
    CheckpointError, Endpoint, IsolationLevel, MemBudget, OnlineLeopard, OnlineOptions,
    PreflightAnalyzer, PreflightConfig, PreflightReport, ServeOptions, Server, ShardedCheckpoint,
    ShardedVerifier, Verifier, VerifierConfig, VerifyOutcome, CAPTURE_VERSION, TRACE_APPROX_BYTES,
};
use leopard_db::{Database, DbConfig, FaultPlan};
use leopard_oracle::{corpus_files, run_matrix, CleanRunSpec, Schedule};
use leopard_workloads::{
    bundled_workload, preload_database, run_chaos_with_sinks_stoppable, run_collect, run_soak,
    ChaosPlan, RetryPolicy, RunLimit, SoakOptions,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observability sinks behind `--metrics-out` / `--trace-out` /
/// `--metrics-interval`. Constructing one with any sink turns the
/// process-global registry on and clears state left by a previous run,
/// so the exported files describe exactly this invocation.
struct ObsSinks {
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    interval: Option<Duration>,
    last_write: Instant,
}

impl ObsSinks {
    fn new(
        metrics_out: Option<&String>,
        trace_out: Option<&String>,
        interval_secs: Option<u64>,
    ) -> ObsSinks {
        if metrics_out.is_some() || trace_out.is_some() {
            obs::reset();
            obs::set_enabled(true);
        }
        ObsSinks {
            metrics_out: metrics_out.map(PathBuf::from),
            trace_out: trace_out.map(PathBuf::from),
            interval: interval_secs.map(Duration::from_secs),
            last_write: Instant::now(),
        }
    }

    fn enabled(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Rewrites the metrics file if the configured interval has elapsed.
    /// Cheap to call per trace: one clock read, and only when an interval
    /// was actually requested.
    fn tick(&mut self) {
        let (Some(path), Some(every)) = (self.metrics_out.as_deref(), self.interval) else {
            return;
        };
        if self.last_write.elapsed() >= every {
            let _ = std::fs::write(path, obs::render_prometheus());
            self.last_write = Instant::now();
        }
    }

    /// Runs [`ObsSinks::tick`] on a background thread until the returned
    /// guard is dropped — for runs that block in one call (chaos) instead
    /// of looping over traces.
    fn spawn_ticker(&self) -> Option<ObsTicker> {
        let (Some(path), Some(every)) = (self.metrics_out.clone(), self.interval) else {
            return None;
        };
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut last = Instant::now();
            // relaxed: a latest-value stop flag; missing one iteration is harmless
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25).min(every));
                if last.elapsed() >= every {
                    let _ = std::fs::write(&path, obs::render_prometheus());
                    last = Instant::now();
                }
            }
        });
        Some(ObsTicker {
            stop,
            handle: Some(handle),
        })
    }

    /// Final export of both sinks. Returns `false` (after printing the
    /// error) if either file cannot be written.
    fn finish(&self, out: &mut dyn Write, quiet: bool) -> bool {
        if let Some(path) = &self.metrics_out {
            if let Err(e) = std::fs::write(path, obs::render_prometheus()) {
                let _ = writeln!(out, "error: cannot write {}: {e}", path.display());
                return false;
            }
            if !quiet {
                let _ = writeln!(out, "metrics written to {}", path.display());
            }
        }
        if let Some(path) = &self.trace_out {
            if let Err(e) = std::fs::write(path, obs::render_chrome_trace()) {
                let _ = writeln!(out, "error: cannot write {}: {e}", path.display());
                return false;
            }
            if !quiet {
                let _ = writeln!(out, "trace written to {}", path.display());
            }
        }
        true
    }

    /// The `,"obs":{...}` suffix spliced into the single-line JSON
    /// summary, or an empty string when observability is off.
    fn json_block(&self, snapshot: Option<&obs::ObsSnapshot>) -> String {
        if !self.enabled() {
            return String::new();
        }
        snapshot
            .and_then(|s| serde_json::to_string(s).ok())
            .map(|j| format!(",\"obs\":{j}"))
            .unwrap_or_default()
    }
}

/// Stops the background metrics rewriter when dropped.
struct ObsTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ObsTicker {
    fn drop(&mut self) {
        // relaxed: plain shutdown flag; the join below is the synchronization
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// `leopard record`: run the bundled engine + workload, write a capture.
pub fn record(cfg: &RecordConfig, out: &mut dyn Write) -> i32 {
    let (proto, gens) = match bundled_workload(&cfg.workload, cfg.scale, cfg.threads) {
        Ok(x) => x,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    let faults = match cfg.fault {
        Some(kind) => FaultPlan::with_probability(kind, cfg.fault_prob, cfg.seed),
        None => FaultPlan::none(),
    };
    let db = Database::with_faults(DbConfig::at(cfg.level), faults);
    let preload = preload_database(&db, proto.as_ref());
    let run = run_collect(&db, gens, RunLimit::Txns(cfg.txns), cfg.seed);

    let header = CaptureHeader {
        version: CAPTURE_VERSION,
        description: format!(
            "{} scale={} level={} threads={} fault={:?}",
            cfg.workload, cfg.scale, cfg.level, cfg.threads, cfg.fault
        ),
        preload,
    };
    let file = match std::fs::File::create(&cfg.out) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot create {}: {e}", cfg.out);
            return 1;
        }
    };
    let mut writer = match CaptureWriter::new(file, &header) {
        Ok(w) => w,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    for trace in run.merged_sorted() {
        if let Err(e) = writer.write(&trace) {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    }
    match writer.finish() {
        Ok(n) => {
            let _ = writeln!(
                out,
                "recorded {} traces ({} committed, {} aborted txns) to {}",
                n, run.stats.committed, run.stats.aborted, cfg.out
            );
            0
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

/// Streams a capture through the preflight analyzer. `Err` carries the
/// process exit code for I/O or format failures.
fn preflight_capture(path: &str, out: &mut dyn Write) -> Result<PreflightReport, i32> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open {path}: {e}");
            return Err(1);
        }
    };
    let mut reader = match CaptureReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return Err(1);
        }
    };
    let mut analyzer = PreflightAnalyzer::new(PreflightConfig::default());
    for &(k, v) in &reader.header().preload.clone() {
        analyzer.preload(k, v);
    }
    loop {
        match reader.next_trace() {
            Ok(Some(trace)) => analyzer.observe(&trace),
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return Err(1);
            }
        }
    }
    Ok(analyzer.finish())
}

/// `leopard lint-history`: run only the preflight analysis on a capture.
pub fn lint_history(cfg: &LintHistoryConfig, out: &mut dyn Write) -> i32 {
    let report = match preflight_capture(&cfg.file, out) {
        Ok(r) => r,
        Err(code) => return code,
    };
    if cfg.json {
        match serde_json::to_string(&report) {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    } else {
        let _ = writeln!(out, "{report}");
    }
    if report.is_clean() {
        0
    } else {
        3
    }
}

/// The verification engine behind `leopard verify`: the single-threaded
/// verifier, or the key-sharded pool when `--shards N` (N > 1) was given.
/// Sharded runs checkpoint to the [`ShardedCheckpoint`] envelope.
// One engine exists per run, so the variant size gap never multiplies.
#[allow(clippy::large_enum_variant)]
enum VerifyEngine {
    Single(Verifier),
    Sharded(ShardedVerifier),
}

impl VerifyEngine {
    fn process(&mut self, trace: &leopard_core::Trace) {
        match self {
            VerifyEngine::Single(v) => v.process(trace),
            VerifyEngine::Sharded(s) => s.process(trace),
        }
    }

    /// Opens the spill tier(s) under `settings` and attaches them; an
    /// error leaves the engine fully in-memory (the caller decides
    /// whether that is a counted fallback or fatal).
    fn attach_spill(
        &mut self,
        settings: &leopard_core::SpillSettings,
    ) -> Result<(), leopard_core::StoreError> {
        match self {
            VerifyEngine::Single(v) => {
                let tier = leopard_core::SpillTier::open(settings)?;
                v.attach_spill(tier);
                Ok(())
            }
            VerifyEngine::Sharded(s) => s.attach_spill(settings),
        }
    }

    /// Records that spilling was requested but could not be enabled:
    /// bumps the counted-fallback tallies and a coverage note.
    fn note_spill_unavailable(&mut self, why: &str) {
        match self {
            VerifyEngine::Single(v) => v.note_spill_unavailable(why),
            VerifyEngine::Sharded(s) => s.note_spill_unavailable(why),
        }
    }

    fn spill_attached(&self) -> bool {
        match self {
            VerifyEngine::Single(v) => v.spill_attached(),
            VerifyEngine::Sharded(s) => s.spill_attached(),
        }
    }

    /// The latched typed store fault, if any. Once set, the engine has
    /// stopped ingesting and no verdict may be reported.
    fn store_fault(&self) -> Option<String> {
        match self {
            VerifyEngine::Single(v) => v.store_fault().map(ToString::to_string),
            VerifyEngine::Sharded(s) => s.store_fault().map(str::to_string),
        }
    }

    fn write_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        match self {
            VerifyEngine::Single(v) => {
                if v.spill_attached() {
                    // Spilled records are referenced by address from the
                    // checkpoint, so the tier must be durable first; the
                    // chained write keeps a good prior generation in case
                    // this one lands torn.
                    v.sync_spill().map_err(|e| match e {
                        leopard_core::StoreError::Io(io) => CheckpointError::Io(io),
                        other => CheckpointError::Malformed(other.to_string()),
                    })?;
                    v.checkpoint().write_chained(path)
                } else {
                    v.checkpoint().write(path)
                }
            }
            VerifyEngine::Sharded(s) => {
                // The checkpoint barrier syncs every shard's tier in the
                // worker before imaging, so only the write mode differs.
                if s.spill_attached() {
                    s.checkpoint().write_chained(path)
                } else {
                    s.checkpoint().write(path)
                }
            }
        }
    }

    fn finish(self) -> VerifyOutcome {
        match self {
            VerifyEngine::Single(v) => v.finish(),
            VerifyEngine::Sharded(s) => s.finish(),
        }
    }
}

/// Builds the spill-tier settings behind `--spill-dir` /
/// `--spill-cache-pages`; `None` when spilling was not requested.
fn spill_settings_from(
    dir: Option<&String>,
    cache_pages: Option<usize>,
) -> Option<leopard_core::SpillSettings> {
    let dir = dir?;
    let mut settings = leopard_core::SpillSettings::new(dir);
    if let Some(pages) = cache_pages {
        settings.cache_pages = pages;
    }
    Some(settings)
}

/// `leopard verify`: audit a capture file.
pub fn verify(cfg: &VerifyConfig, out: &mut dyn Write) -> i32 {
    let mut sinks = ObsSinks::new(
        cfg.metrics_out.as_ref(),
        cfg.trace_out.as_ref(),
        cfg.metrics_interval,
    );
    if cfg.skip_preflight {
        if !cfg.json {
            let _ = writeln!(out, "preflight: skipped (--skip-preflight)");
        }
    } else {
        let report = match preflight_capture(&cfg.file, out) {
            Ok(r) => r,
            Err(code) => return code,
        };
        if !cfg.json {
            let _ = writeln!(out, "{report}");
        }
        if report.has_errors() {
            if cfg.degraded {
                if !cfg.json {
                    let _ = writeln!(
                        out,
                        "preflight found errors; continuing in degraded mode \
                         (ill-formed traces are quarantined, not verified)"
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "refusing to verify: the history failed preflight, so verification \
                     verdicts would be untrustworthy (rerun with --skip-preflight to force)"
                );
                return 4;
            }
        }
    }

    let file = match std::fs::File::open(&cfg.file) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open {}: {e}", cfg.file);
            return 1;
        }
    };
    let mut reader = match CaptureReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    if !cfg.json {
        let _ = writeln!(out, "capture: {}", reader.header().description);
    }

    let spill = spill_settings_from(cfg.spill_dir.as_ref(), cfg.spill_cache_pages);

    // A resumed verifier carries its configuration (and the already-applied
    // preload) inside the checkpoint; a fresh one is built from the flags.
    let mut skip = 0u64;
    let mut verifier = if let Some(ckpt_path) = &cfg.resume {
        // The shard count selects the checkpoint format: a sharded run
        // images itself as a ShardedCheckpoint envelope, a single-threaded
        // run as a flat Checkpoint. `read_chained` transparently accepts
        // plain pre-chain files and falls back past corrupt head
        // generations, surfacing the fallback as a warning.
        let engine = if cfg.shards > 1 {
            match ShardedCheckpoint::read_chained(Path::new(ckpt_path)).and_then(
                |(ckpt, warning)| ShardedVerifier::resume(&ckpt).map(|v| (ckpt, warning, v)),
            ) {
                Ok((ckpt, warning, mut v)) => {
                    skip = ckpt.traces_fed;
                    if let Some(w) = &warning {
                        let _ = writeln!(out, "warning: {w}");
                    }
                    let spilled: u64 = ckpt.shards.iter().map(|s| s.spill.len() as u64).sum();
                    match (&spill, spilled) {
                        (Some(settings), _) => {
                            if let Err(e) = v.resume_spill(&ckpt, settings) {
                                if spilled > 0 {
                                    let _ = writeln!(
                                        out,
                                        "error: checkpoint references {spilled} spilled \
                                         record(s) but the spill tier cannot be opened: {e}"
                                    );
                                    return 1;
                                }
                                v.note_spill_unavailable(&e.to_string());
                            }
                        }
                        (None, 0) => {}
                        (None, _) => {
                            let _ = writeln!(
                                out,
                                "error: checkpoint references {spilled} spilled record(s) \
                                 but no --spill-dir was given"
                            );
                            return 1;
                        }
                    }
                    VerifyEngine::Sharded(v)
                }
                Err(e) => {
                    let _ = writeln!(out, "error: cannot resume from {ckpt_path}: {e}");
                    return 1;
                }
            }
        } else {
            match Checkpoint::read_chained(Path::new(ckpt_path)).and_then(|(ckpt, warning)| {
                Verifier::from_checkpoint(&ckpt).map(|v| (ckpt, warning, v))
            }) {
                Ok((ckpt, warning, mut v)) => {
                    skip = ckpt.traces_ingested;
                    if let Some(w) = &warning {
                        let _ = writeln!(out, "warning: {w}");
                        v.note_degraded_load(w);
                    }
                    match (&spill, ckpt.spill.len()) {
                        (Some(settings), _) => match leopard_core::SpillTier::open(settings) {
                            Ok(tier) => v.resume_spill(tier, &ckpt.spill),
                            Err(e) if ckpt.spill.is_empty() => {
                                v.note_spill_unavailable(&e.to_string());
                            }
                            Err(e) => {
                                let _ = writeln!(
                                    out,
                                    "error: checkpoint references {} spilled record(s) \
                                     but the spill tier cannot be opened: {e}",
                                    ckpt.spill.len()
                                );
                                return 1;
                            }
                        },
                        (None, 0) => {}
                        (None, n) => {
                            let _ = writeln!(
                                out,
                                "error: checkpoint references {n} spilled record(s) \
                                 but no --spill-dir was given"
                            );
                            return 1;
                        }
                    }
                    VerifyEngine::Single(v)
                }
                Err(e) => {
                    let _ = writeln!(out, "error: cannot resume from {ckpt_path}: {e}");
                    return 1;
                }
            }
        };
        if !cfg.json {
            let _ = writeln!(
                out,
                "resumed from {ckpt_path}: {skip} traces already ingested"
            );
        }
        engine
    } else {
        let mut vcfg = VerifierConfig::for_level(cfg.level);
        vcfg.clock_skew_bound = cfg.skew_bound;
        vcfg.gc = !cfg.no_gc;
        vcfg.degraded = cfg.degraded;
        if let Some(bytes) = cfg.mem_budget {
            vcfg.mem_budget = MemBudget::bytes(bytes);
        }
        let mut v = if cfg.shards > 1 {
            VerifyEngine::Sharded(ShardedVerifier::new(vcfg, cfg.shards))
        } else {
            VerifyEngine::Single(Verifier::new(vcfg))
        };
        for &(k, val) in &reader.header().preload.clone() {
            match &mut v {
                VerifyEngine::Single(v) => v.preload(k, val),
                VerifyEngine::Sharded(s) => s.preload(k, val),
            }
        }
        v
    };

    // Attach the spill tier unless a resume already did. Failure to open
    // it is a counted fallback — the run proceeds fully in memory with a
    // coverage note, never a silent change of verdict.
    if let Some(settings) = &spill {
        if !verifier.spill_attached() {
            if let Err(e) = verifier.attach_spill(settings) {
                let _ = writeln!(
                    out,
                    "warning: spill tier unavailable ({e}); continuing in memory"
                );
                verifier.note_spill_unavailable(&e.to_string());
            }
        }
    }

    let ckpt_out = cfg.checkpoint.as_ref().map(PathBuf::from);
    crate::signals::install_termination_handler();
    let mut seen = 0u64;
    let mut processed = 0u64;
    loop {
        if crate::signals::termination_requested() {
            // Graceful shutdown: persist the exact resume point and the
            // metrics snapshot, then exit with the conventional 128+SIG
            // code so wrappers can tell "interrupted" from "violations".
            if let Some(path) = &ckpt_out {
                if let Err(e) = verifier.write_checkpoint(path) {
                    let _ = writeln!(out, "error: cannot checkpoint: {e}");
                    return 1;
                }
                let _ = writeln!(
                    out,
                    "interrupted after {processed} traces; checkpoint flushed to {}",
                    path.display()
                );
            } else {
                let _ = writeln!(out, "interrupted after {processed} traces");
            }
            sinks.finish(out, cfg.json);
            return 130;
        }
        match reader.next_trace() {
            Ok(Some(trace)) => {
                seen += 1;
                if seen <= skip {
                    continue;
                }
                verifier.process(&trace);
                processed += 1;
                // A latched store fault means spilled state could not be
                // read back: the engine has stopped ingesting, and
                // reporting a verdict would be unsound. Fail typed.
                if let Some(fault) = verifier.store_fault() {
                    let _ = writeln!(
                        out,
                        "error: {fault} after {processed} traces; no verdict is \
                         reported (rerun from the last good checkpoint)"
                    );
                    sinks.finish(out, cfg.json);
                    return 1;
                }
                sinks.tick();
                if let (Some(path), Some(every)) = (&ckpt_out, cfg.checkpoint_every) {
                    if processed.is_multiple_of(every) {
                        if let Err(e) = verifier.write_checkpoint(path) {
                            let _ = writeln!(out, "error: cannot checkpoint: {e}");
                            return 1;
                        }
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &ckpt_out {
        if let Err(e) = verifier.write_checkpoint(path) {
            let _ = writeln!(out, "error: cannot checkpoint: {e}");
            return 1;
        }
        if !cfg.json {
            let _ = writeln!(out, "checkpoint written to {}", path.display());
        }
    }
    let outcome = verifier.finish();
    if !sinks.finish(out, cfg.json) {
        return 1;
    }
    if let Some(fault) = &outcome.store_fault {
        // Deferred checks may fault records in at finish; the same rule
        // applies — a typed error, never a verdict over partial state.
        let _ = writeln!(out, "error: {fault}; no verdict is reported");
        return 1;
    }
    if cfg.json {
        let cov = &outcome.coverage;
        let budget = &outcome.counters.budget;
        let evicted: Vec<String> = cov
            .evicted_clients
            .iter()
            .map(|c| c.0.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{{\"level\":\"{}\",\"traces\":{},\"committed\":{},\
             \"peak_bytes\":{},\"peak_entries\":{},\"forced_gcs\":{},\
             \"forced_dispatches\":{},\"shed_traces\":{},\"budget_evictions\":{},\
             \"spill_passes\":{},\"spilled_records\":{},\"spill_faults\":{},\
             \"spill_fallbacks\":{},\
             \"evicted_clients\":[{}],\"quarantined_traces\":{},\"demoted_reads\":{},\
             \"violations\":{},\"clean\":{},\"complete\":{}{}}}",
            cfg.level,
            outcome.counters.traces,
            outcome.counters.committed,
            budget.peak_bytes,
            budget.peak_entries,
            budget.forced_gcs,
            budget.forced_dispatches,
            budget.shed_traces,
            budget.budget_evictions,
            budget.spill_passes,
            budget.spilled_records,
            budget.spill_faults,
            budget.spill_fallbacks,
            evicted.join(","),
            cov.quarantined_traces,
            cov.demoted_reads,
            outcome.report.violations.len(),
            outcome.report.is_clean(),
            cov.is_complete(),
            sinks.json_block(outcome.obs.as_ref()),
        );
        return if outcome.report.is_clean() { 0 } else { 3 };
    }
    let _ = writeln!(
        out,
        "verified {} traces / {} committed transactions at {}",
        outcome.counters.traces, outcome.counters.committed, cfg.level
    );
    let _ = writeln!(out, "{}", outcome.stats);
    if cfg.mem_budget.is_some() {
        let budget = &outcome.counters.budget;
        let _ = writeln!(
            out,
            "resources: peak {} bytes / {} entries, {} forced gcs, {} shed",
            budget.peak_bytes, budget.peak_entries, budget.forced_gcs, budget.shed_traces
        );
    }
    if spill.is_some() {
        let budget = &outcome.counters.budget;
        let _ = writeln!(
            out,
            "spill: {} pass(es), {} record(s) paged out, {} fault(s), {} fallback(s)",
            budget.spill_passes,
            budget.spilled_records,
            budget.spill_faults,
            budget.spill_fallbacks
        );
    }
    if !outcome.coverage.is_complete() {
        let _ = write!(out, "{}", outcome.coverage);
    }
    if outcome.report.is_clean() {
        let _ = writeln!(out, "verdict: CLEAN");
        0
    } else {
        let _ = writeln!(out, "verdict: VIOLATIONS\n{}", outcome.report);
        3
    }
}

/// `leopard chaos`: run a bundled workload under seeded fault injection
/// (client kills, stalls, dropped/duplicated deliveries, clock-skew
/// bursts) through the *online* Tracer→Verifier chain in degraded mode,
/// and report both the verdict and how much of the history it covers.
pub fn chaos(cfg: &ChaosConfig, out: &mut dyn Write) -> i32 {
    let sinks = ObsSinks::new(
        cfg.metrics_out.as_ref(),
        cfg.trace_out.as_ref(),
        cfg.metrics_interval,
    );
    // Channel-layer losses are counted unconditionally in the global
    // registry (they must never be silent), so the per-run figure is a
    // before/after delta rather than an absolute read.
    let shed_lossy_before = obs::counter_value(obs::Counter::ShedLossy);
    let post_shutdown_before = obs::counter_value(obs::Counter::PostShutdownDrops);
    let (proto, gens) = match bundled_workload(&cfg.workload, cfg.scale, cfg.threads) {
        Ok(x) => x,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    let plan = ChaosPlan {
        seed: cfg.chaos_seed,
        kill_prob: cfg.kill_prob,
        stall_prob: cfg.stall_prob,
        stall: Duration::from_millis(cfg.stall_ms),
        drop_prob: cfg.drop_prob,
        dup_prob: cfg.dup_prob,
        truncate_after: None,
        skew_burst_prob: cfg.skew_burst_prob,
        skew_magnitude: cfg.skew_magnitude,
        // Bound total divergence so the verifier's skew bound stays finite.
        max_skew_bursts: if cfg.skew_burst_prob > 0.0 { 8 } else { 0 },
        disk_fault_prob: cfg.disk_fault_prob,
        disk_enospc_after_bytes: cfg.disk_enospc_after,
    };
    // The spill tier rides under the same seeded chaos umbrella: the
    // plan's disk knobs become the tier's fault-injection spec.
    let spill = spill_settings_from(cfg.spill_dir.as_ref(), cfg.spill_cache_pages).map(|mut s| {
        s.fault = plan.fault_spec();
        s
    });
    let retry = RetryPolicy::with_backoff(
        cfg.retry_attempts,
        Duration::from_millis(cfg.retry_backoff_ms),
    )
    .with_jitter(cfg.retry_jitter);

    let db = Database::new(DbConfig::at(cfg.level));
    let preload = preload_database(&db, proto.as_ref());

    let mut vcfg = VerifierConfig::for_level(cfg.level);
    vcfg.degraded = true;
    vcfg.clock_skew_bound = plan.skew_bound();
    if let Some(bytes) = cfg.mem_budget {
        vcfg.mem_budget = MemBudget::bytes(bytes);
    }
    // Under a memory budget the per-client channels are bounded too, so
    // ingest cannot outrun the collector by more than the budget allows.
    let backpressure = match cfg.mem_budget {
        Some(bytes) => {
            let per_client =
                (bytes as usize / TRACE_APPROX_BYTES / cfg.threads.max(1)).clamp(16, 4096);
            Backpressure::Blocking(per_client)
        }
        None => Backpressure::Unbounded,
    };
    let opts = OnlineOptions {
        eviction_timeout: Some(Duration::from_millis(cfg.evict_timeout_ms)),
        checkpoint_path: cfg.checkpoint.as_ref().map(PathBuf::from),
        checkpoint_every: cfg.checkpoint_every,
        backpressure,
        shards: cfg.shards,
        spill: spill.clone(),
        ..OnlineOptions::default()
    };
    let ticker = sinks.spawn_ticker();
    // SIGINT/SIGTERM flip a flag the client threads poll; the run then
    // winds down through the normal path, so the final checkpoint and
    // metrics snapshot are flushed before the process exits with 130.
    crate::signals::install_termination_handler();
    let interrupt = Arc::new(AtomicBool::new(false));
    let watcher = {
        let interrupt = Arc::clone(&interrupt);
        std::thread::spawn(move || {
            while !interrupt.load(Ordering::SeqCst) {
                if crate::signals::termination_requested() {
                    interrupt.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let (online, handles) = OnlineLeopard::start_opts(cfg.threads, vcfg, opts, preload);
    let (mut stats, client_sinks) = run_chaos_with_sinks_stoppable(
        &db,
        gens,
        handles,
        RunLimit::Txns(cfg.txns),
        cfg.seed,
        &plan,
        retry,
        &interrupt,
    );
    drop(client_sinks); // close every client stream
    interrupt.store(true, Ordering::SeqCst);
    let _ = watcher.join();
    let interrupted = crate::signals::termination_requested();
    let (outcome, pstats) = match online.finish_with_timeout(Duration::from_secs(60)) {
        Ok(x) => x,
        Err(timeout) => {
            let _ = writeln!(out, "warning: {timeout}");
            (timeout.outcome, timeout.stats)
        }
    };
    drop(ticker);
    // saturating: a concurrent in-process run (tests) may reset the
    // registry mid-flight; a clamped-to-zero figure beats a panic.
    let shed_lossy = obs::counter_value(obs::Counter::ShedLossy).saturating_sub(shed_lossy_before);
    let post_shutdown_drops =
        obs::counter_value(obs::Counter::PostShutdownDrops).saturating_sub(post_shutdown_before);
    if !sinks.finish(out, cfg.json) {
        return 1;
    }

    stats.absorb_pipeline(&pstats);
    if let Some(fault) = &outcome.store_fault {
        // An unrecoverable spill-tier fault (after retries) is a typed
        // terminal outcome: the verdict over partial state would be
        // unsound, so none is reported.
        let _ = writeln!(out, "error: {fault}; no verdict is reported");
        return 1;
    }
    let cov = &outcome.coverage;
    let budget = &outcome.counters.budget;
    if cfg.json {
        let evicted: Vec<String> = cov
            .evicted_clients
            .iter()
            .map(|c| c.0.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{{\"workload\":\"{}\",\"level\":\"{}\",\"seed\":{},\"chaos_seed\":{},\
             \"committed\":{},\"aborted\":{},\"retries\":{},\"killed\":{},\"stalled\":{},\
             \"traces_dropped\":{},\"traces_duplicated\":{},\
             \"dispatched\":{},\"duplicates_deduped\":{},\"evicted_clients\":[{}],\
             \"quarantined_traces\":{},\"demoted_reads\":{},\"indeterminate_txns\":{},\
             \"peak_bytes\":{},\"forced_gcs\":{},\"forced_dispatches\":{},\
             \"shed_traces\":{},\"shed_lossy\":{},\"post_shutdown_drops\":{},\
             \"budget_evictions\":{},\
             \"spill_passes\":{},\"spilled_records\":{},\"spill_faults\":{},\
             \"spill_fallbacks\":{},\
             \"violations\":{},\"clean\":{},\"complete\":{}{}}}",
            cfg.workload,
            cfg.level,
            cfg.seed,
            cfg.chaos_seed,
            stats.committed,
            stats.aborted,
            stats.retries,
            stats.killed,
            stats.stalled,
            stats.traces_dropped,
            stats.traces_duplicated,
            pstats.dispatched,
            pstats.duplicates_dropped,
            evicted.join(","),
            cov.quarantined_traces,
            cov.demoted_reads,
            cov.indeterminate_txns.len(),
            budget.peak_bytes,
            budget.forced_gcs,
            budget.forced_dispatches,
            budget.shed_traces,
            shed_lossy,
            post_shutdown_drops,
            budget.budget_evictions,
            budget.spill_passes,
            budget.spilled_records,
            budget.spill_faults,
            budget.spill_fallbacks,
            outcome.report.violations.len(),
            outcome.report.is_clean(),
            cov.is_complete(),
            sinks.json_block(outcome.obs.as_ref()),
        );
    } else {
        let _ = writeln!(
            out,
            "chaos: {} level={} threads={} txns/client={} seed={} chaos-seed={}",
            cfg.workload, cfg.level, cfg.threads, cfg.txns, cfg.seed, cfg.chaos_seed
        );
        let _ = writeln!(
            out,
            "run: {} committed, {} aborted, {} retries, {} killed, {} stalled",
            stats.committed, stats.aborted, stats.retries, stats.killed, stats.stalled
        );
        let _ = writeln!(
            out,
            "transport: {} deliveries dropped, {} duplicated",
            stats.traces_dropped, stats.traces_duplicated
        );
        let _ = writeln!(
            out,
            "pipeline: {} dispatched, {} duplicates deduped, {} clients evicted",
            pstats.dispatched, pstats.duplicates_dropped, pstats.evicted_clients
        );
        if shed_lossy > 0 || post_shutdown_drops > 0 {
            let _ = writeln!(
                out,
                "channel: {shed_lossy} shed under lossy backpressure, \
                 {post_shutdown_drops} dropped after shutdown"
            );
        }
        if cfg.mem_budget.is_some() {
            let _ = writeln!(
                out,
                "resources: peak {} bytes, {} forced gcs, {} forced dispatches, \
                 {} shed, {} budget evictions",
                budget.peak_bytes,
                budget.forced_gcs,
                budget.forced_dispatches,
                budget.shed_traces,
                budget.budget_evictions
            );
        }
        if spill.is_some() {
            let _ = writeln!(
                out,
                "spill: {} pass(es), {} record(s) paged out, {} fault(s) retried or \
                 recovered, {} fallback(s)",
                budget.spill_passes,
                budget.spilled_records,
                budget.spill_faults,
                budget.spill_fallbacks
            );
        }
        let _ = write!(out, "{cov}");
    }
    let code = if outcome.report.is_clean() {
        if !cfg.json {
            let _ = writeln!(out, "verdict: CLEAN");
        }
        0
    } else {
        if !cfg.json {
            let _ = writeln!(out, "verdict: VIOLATIONS\n{}", outcome.report);
        }
        3
    };
    if interrupted {
        if !cfg.json {
            let _ = writeln!(
                out,
                "interrupted: final checkpoint and metrics snapshot flushed before exit"
            );
        }
        return 130;
    }
    code
}

/// `leopard oracle`: run the anomaly-injection differential matrix and
/// optionally write the corpus to disk.
pub fn oracle(cfg: &OracleConfig, out: &mut dyn Write) -> i32 {
    let spec = CleanRunSpec {
        workload: cfg.workload.clone(),
        rows: cfg.rows,
        clients: cfg.clients,
        txns_per_client: cfg.txns,
        level: IsolationLevel::Serializable,
        seed: cfg.seed,
        tick: 100,
        schedule: Schedule::Serial,
    };
    let report = match run_matrix(&spec) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 2;
        }
    };
    if cfg.json {
        match serde_json::to_string(&report) {
            Ok(json) => {
                let _ = writeln!(out, "{json}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        }
    } else {
        let _ = writeln!(out, "{report}");
    }
    if let Some(dir) = &cfg.out_dir {
        let files = match corpus_files(&spec) {
            Ok(f) => f,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                return 1;
            }
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            let _ = writeln!(out, "error: cannot create {dir}: {e}");
            return 1;
        }
        for (name, bytes) in &files {
            let path = std::path::Path::new(dir).join(name);
            if let Err(e) = std::fs::write(&path, bytes) {
                let _ = writeln!(out, "error: cannot write {}: {e}", path.display());
                return 1;
            }
        }
        let _ = writeln!(out, "wrote {} corpus files to {dir}", files.len());
    }
    if report.all_ok {
        0
    } else {
        3
    }
}

/// `leopard serve`: run the verification daemon until SIGINT/SIGTERM
/// (or a `shutdown` control command) asks it to flush every active
/// stream's checkpoint and exit.
pub fn serve(cfg: &ServeCliConfig, out: &mut dyn Write) -> i32 {
    let ingest = match Endpoint::parse(&cfg.listen) {
        Ok(ep) => ep,
        Err(e) => {
            let _ = writeln!(out, "error: --listen: {e}");
            return 2;
        }
    };
    let control = match cfg.control.as_deref().map(Endpoint::parse).transpose() {
        Ok(ep) => ep,
        Err(e) => {
            let _ = writeln!(out, "error: --control: {e}");
            return 2;
        }
    };
    let mut opts = ServeOptions::new(PathBuf::from(&cfg.dir));
    opts.checkpoint_every = cfg.checkpoint_every.max(1);
    opts.global_budget_bytes = cfg.global_budget;
    opts.spill = spill_settings_from(cfg.spill_dir.as_ref(), cfg.spill_cache_pages);
    let server = match Server::bind(&ingest, control.as_ref(), opts) {
        Ok(s) => s,
        Err(e) => {
            let _ = writeln!(out, "error: cannot bind {}: {e}", cfg.listen);
            return 1;
        }
    };
    let handle = server.handle();
    let recovered = handle.streams().len();
    let _ = writeln!(
        out,
        "serving on {} (control: {}), checkpoints in {}, {} stream(s) recovered",
        cfg.listen,
        cfg.control.as_deref().unwrap_or("off"),
        cfg.dir,
        recovered
    );
    // The signal watcher translates SIGINT/SIGTERM into the same
    // shutdown request the control endpoint issues, so both paths flush
    // final checkpoints through Server::run's join-on-exit.
    crate::signals::install_termination_handler();
    let watcher = std::thread::spawn(move || {
        while !handle.is_shutting_down() {
            if crate::signals::termination_requested() {
                handle.shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let code = match server.run() {
        Ok(()) => {
            let _ = writeln!(out, "shutdown complete; all stream checkpoints flushed");
            if crate::signals::termination_requested() {
                130
            } else {
                0
            }
        }
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    };
    let _ = watcher.join();
    code
}

/// `leopard ingest`: stream a capture file to a running daemon and print
/// its verdict. Exit 0 for a clean, complete verdict; 3 when violations
/// were found or coverage is degraded; 1 on transport/daemon errors.
pub fn ingest(cfg: &IngestConfig, out: &mut dyn Write) -> i32 {
    let endpoint = match Endpoint::parse(&cfg.to) {
        Ok(ep) => ep,
        Err(e) => {
            let _ = writeln!(out, "error: --to: {e}");
            return 2;
        }
    };
    let file = match std::fs::File::open(&cfg.file) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(out, "error: cannot open {}: {e}", cfg.file);
            return 1;
        }
    };
    let mut reader = match CaptureReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    let stream = cfg.stream.clone().unwrap_or_else(|| {
        Path::new(&cfg.file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "capture".to_string())
    });
    let verdict = match ingest_capture(&endpoint, &stream, cfg.level, cfg.mem_budget, &mut reader) {
        Ok(v) => v,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            return 1;
        }
    };
    if cfg.json {
        let _ = writeln!(out, "{}", verdict.to_json());
    } else {
        let _ = writeln!(
            out,
            "stream {}: {} — {} traces, {} committed, {} violations",
            verdict.stream, verdict.status, verdict.traces, verdict.committed, verdict.violations
        );
        if verdict.quarantined_traces > 0 || verdict.demoted_reads > 0 {
            let _ = writeln!(
                out,
                "coverage: {} traces quarantined, {} reads demoted",
                verdict.quarantined_traces, verdict.demoted_reads
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if verdict.clean && verdict.complete {
                "CLEAN"
            } else if verdict.clean {
                "CLEAN (incomplete coverage)"
            } else {
                "VIOLATIONS"
            }
        );
    }
    if verdict.clean && verdict.complete && verdict.status == "ok" {
        0
    } else {
        3
    }
}

/// `leopard soak`: hammer a running daemon with concurrent streams over
/// the real wire under seeded chaos (connection cuts, torn frames,
/// duplicated frames, stalls) and check that every stream still
/// converges to a clean, complete verdict.
pub fn soak(cfg: &SoakCliConfig, out: &mut dyn Write) -> i32 {
    let endpoint = match Endpoint::parse(&cfg.to) {
        Ok(ep) => ep,
        Err(e) => {
            let _ = writeln!(out, "error: --to: {e}");
            return 2;
        }
    };
    let mut opts = SoakOptions::new(endpoint);
    opts.streams = cfg.streams;
    opts.workload = cfg.workload.clone();
    opts.txns = cfg.txns;
    opts.clients = cfg.clients;
    opts.level = cfg.level;
    opts.seed = cfg.seed;
    opts.chaos = ChaosPlan {
        seed: cfg.seed ^ 0xC4A5_0A7E,
        kill_prob: cfg.kill_prob,
        dup_prob: cfg.dup_prob,
        stall_prob: cfg.stall_prob,
        stall: Duration::from_millis(cfg.stall_ms),
        ..ChaosPlan::none()
    };
    opts.retry = RetryPolicy::with_backoff(
        cfg.retry_attempts,
        Duration::from_millis(cfg.retry_backoff_ms),
    )
    .with_jitter(cfg.retry_jitter);
    opts.max_reconnect_attempts = cfg.retry_attempts;
    let report = run_soak(&opts);
    report.render(out);
    let _ = writeln!(
        out,
        "soak: {} stream(s), {} fault(s) injected",
        report.outcomes.len(),
        report.total_faults()
    );
    if report.all_clean() {
        let _ = writeln!(out, "verdict: CLEAN");
        0
    } else {
        let _ = writeln!(out, "verdict: DEGRADED");
        3
    }
}

/// `leopard catalog`: print the Fig. 1 table.
pub fn catalog(out: &mut dyn Write) -> i32 {
    let _ = writeln!(
        out,
        "{:<38} {:<16} {:<4} {:>3} {:>7} {:>4} {:>6}",
        "DBMS", "CC", "IL", "ME", "CR", "FUW", "SC"
    );
    for profile in leopard_core::catalog() {
        for (level, m) in &profile.levels {
            let _ = writeln!(
                out,
                "{:<38} {:<16} {:<4} {:>3} {:>7} {:>4} {:>6}",
                profile.name,
                profile.concurrency_control,
                level.to_string(),
                if m.mutual_exclusion { "x" } else { "" },
                match m.consistent_read {
                    Some(leopard_core::SnapshotLevel::Transaction) => "x(txn)",
                    Some(leopard_core::SnapshotLevel::Statement) => "x(stmt)",
                    None => "",
                },
                if m.first_updater_wins { "x" } else { "" },
                match m.certifier {
                    Some(leopard_core::CertifierRule::SsiDangerousStructure) => "SSI",
                    Some(leopard_core::CertifierRule::MvtoTimestampOrder) => "MVTO",
                    Some(leopard_core::CertifierRule::AcyclicGraph) => "cycle",
                    None => "",
                },
            );
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{RecordConfig, VerifyConfig};
    use leopard_core::IsolationLevel;
    use leopard_db::FaultKind;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("leopard_cli_{name}_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn record_then_verify_clean_round_trip() {
        let path = tmp("clean");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 50,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("CLEAN"));

        let mut out = Vec::new();
        let code = lint_history(
            &LintHistoryConfig {
                file: path.clone(),
                json: false,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("preflight: clean"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulty_recording_fails_verification() {
        let path = tmp("faulty");
        let mut out = Vec::new();
        // PhantomExtraVersion resurrects a long-overwritten version in a
        // range read; the stale version is certainly garbage for the
        // snapshot, so detection does not depend on thread timing.
        let code = record(
            &RecordConfig {
                workload: "blindw-rw+".to_string(),
                level: IsolationLevel::RepeatableRead,
                threads: 4,
                txns: 400,
                scale: 1,
                fault: Some(FaultKind::PhantomExtraVersion),
                fault_prob: 0.20,
                seed: 9,
                out: path.clone(),
            },
            &mut out,
        );
        assert_eq!(code, 0);

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                level: IsolationLevel::RepeatableRead,
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("VIOLATIONS"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_missing_file_fails_cleanly() {
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: "/nonexistent/definitely/missing.jsonl".to_string(),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 1);
    }

    #[test]
    fn verify_refuses_broken_history_unless_skipped() {
        use leopard_core::{CaptureHeader, CaptureWriter, TraceBuilder, CAPTURE_VERSION};

        // A history with a phantom read (H006): value 777 never written.
        let mut b = TraceBuilder::new();
        b.read(10, 12, 0, 1, vec![(1, 777)]);
        b.commit(13, 15, 0, 1);
        let header = CaptureHeader {
            version: CAPTURE_VERSION,
            description: "hand-built broken history".to_string(),
            preload: vec![],
        };
        let path = tmp("broken");
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = CaptureWriter::new(file, &header).unwrap();
        for trace in b.build() {
            writer.write(&trace).unwrap();
        }
        writer.finish().unwrap();

        let base = VerifyConfig {
            file: path.clone(),
            ..VerifyConfig::default()
        };
        let mut out = Vec::new();
        let code = verify(&base, &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 4, "{text}");
        assert!(text.contains("H006"));
        assert!(text.contains("refusing to verify"));

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                skip_preflight: true,
                ..base
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_ne!(code, 4, "{text}");
        assert!(text.contains("preflight: skipped"));

        let mut out = Vec::new();
        let code = lint_history(
            &LintHistoryConfig {
                file: path.clone(),
                json: true,
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 3, "{text}");
        assert!(text.contains("\"H006\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oracle_matrix_agrees_and_writes_corpus() {
        let dir = std::env::temp_dir().join(format!("leopard_oracle_cmd_{}", std::process::id()));
        let mut out = Vec::new();
        let code = oracle(
            &crate::args::OracleConfig {
                out_dir: Some(dir.to_string_lossy().into_owned()),
                ..crate::args::OracleConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("all cells agree"), "{text}");
        for name in [
            "base.jsonl",
            "write-skew.jsonl",
            "matrix.json",
            "manifest.json",
        ] {
            assert!(dir.join(name).is_file(), "{name} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_json_output_is_parseable() {
        let mut out = Vec::new();
        let code = oracle(
            &crate::args::OracleConfig {
                json: true,
                ..crate::args::OracleConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"all_ok\":true"), "{text}");
        let mut out = Vec::new();
        assert_eq!(
            oracle(
                &crate::args::OracleConfig {
                    workload: "nope".to_string(),
                    ..crate::args::OracleConfig::default()
                },
                &mut out,
            ),
            2
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "nope".to_string(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 2);
    }

    #[test]
    fn chaos_run_terminates_with_degraded_coverage() {
        let mut out = Vec::new();
        let code = chaos(
            &crate::args::ChaosConfig {
                threads: 3,
                txns: 60,
                kill_prob: 0.15,
                drop_prob: 0.05,
                dup_prob: 0.05,
                ..crate::args::ChaosConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "chaos run must stay clean: {text}");
        assert!(text.contains("verdict: CLEAN"), "{text}");
        assert!(text.contains("coverage: DEGRADED"), "{text}");
    }

    #[test]
    fn chaos_json_summary_is_emitted() {
        let mut out = Vec::new();
        let code = chaos(
            &crate::args::ChaosConfig {
                threads: 2,
                txns: 30,
                json: true,
                ..crate::args::ChaosConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("\"clean\":true"), "{text}");
        assert!(text.contains("\"killed\":"), "{text}");
        assert!(text.contains("\"retries\":"), "{text}");
        let mut out = Vec::new();
        assert_eq!(
            chaos(
                &crate::args::ChaosConfig {
                    workload: "nope".to_string(),
                    ..crate::args::ChaosConfig::default()
                },
                &mut out,
            ),
            2
        );
    }

    #[test]
    fn verify_json_reports_peak_memory_and_budget_counters() {
        let path = tmp("budget_json");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 60,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0);

        // A tight budget forces GC but must not change the verdict.
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                mem_budget: Some(8 * 1024),
                json: true,
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        // JSON mode emits exactly one line: the summary object.
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"clean\":true"), "{text}");
        assert!(text.contains("\"peak_bytes\":"), "{text}");
        assert!(text.contains("\"forced_gcs\":"), "{text}");
        assert!(text.contains("\"shed_traces\":"), "{text}");
        assert!(text.contains("\"budget_evictions\":"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_with_mem_budget_stays_clean_and_reports_resources() {
        let mut out = Vec::new();
        let code = chaos(
            &crate::args::ChaosConfig {
                threads: 2,
                txns: 40,
                mem_budget: Some(256 * 1024),
                ..crate::args::ChaosConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("resources: peak"), "{text}");
        assert!(text.contains("verdict: CLEAN"), "{text}");
    }

    #[test]
    fn verify_with_observability_writes_metrics_and_trace() {
        let path = tmp("obs_cap");
        let metrics = tmp("obs_metrics");
        let trace = tmp("obs_trace");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 50,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0);

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                shards: 2,
                json: true,
                metrics_out: Some(metrics.clone()),
                trace_out: Some(trace.clone()),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        // The summary stays a single line with the obs block spliced in.
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"obs\":{"), "{text}");
        assert!(text.contains("leopard_ops_ingested_total"), "{text}");

        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("# TYPE leopard_ops_ingested_total counter"));
        assert!(prom.contains("leopard_dispatch_latency_us_bucket{le=\"+Inf\"}"));
        let tr = std::fs::read_to_string(&trace).unwrap();
        assert!(tr.contains("\"traceEvents\""));
        assert!(tr.contains("\"ph\":\"X\""));

        leopard_core::obs::set_enabled(false);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn verify_checkpoint_then_resume_agrees() {
        let path = tmp("ckpt_cap");
        let ckpt = tmp("ckpt_state");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 40,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0);

        // Full pass writing intermediate + final checkpoints.
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                checkpoint: Some(ckpt.clone()),
                checkpoint_every: Some(50),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let full = String::from_utf8_lossy(&out).into_owned();
        assert_eq!(code, 0, "{full}");
        assert!(full.contains("checkpoint written"), "{full}");

        // Resuming from the *final* checkpoint re-ingests nothing and must
        // reach the same verdict.
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                resume: Some(ckpt.clone()),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let resumed = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{resumed}");
        assert!(resumed.contains("resumed from"), "{resumed}");
        assert!(resumed.contains("verdict: CLEAN"), "{resumed}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn sharded_verify_agrees_with_single_threaded() {
        let path = tmp("shard_cap");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 40,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0);

        let run = |shards: usize| {
            let mut out = Vec::new();
            let code = verify(
                &VerifyConfig {
                    file: path.clone(),
                    shards,
                    json: true,
                    ..VerifyConfig::default()
                },
                &mut out,
            );
            (code, String::from_utf8_lossy(&out).into_owned())
        };
        let (code1, single) = run(1);
        let (code4, sharded) = run(4);
        assert_eq!(code1, 0, "{single}");
        assert_eq!(code4, 0, "{sharded}");
        // The JSON summaries agree except for the peak-footprint fields,
        // which measure the engine's own topology.
        let strip = |s: &str| {
            s.split(',')
                .filter(|f| !f.contains("peak_"))
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(strip(&single), strip(&sharded));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_checkpoint_then_resume_agrees() {
        let path = tmp("shard_ckpt_cap");
        let ckpt = tmp("shard_ckpt_state");
        let mut out = Vec::new();
        let code = record(
            &RecordConfig {
                workload: "blindw-rw".to_string(),
                threads: 2,
                txns: 40,
                out: path.clone(),
                ..RecordConfig::default()
            },
            &mut out,
        );
        assert_eq!(code, 0);

        // Sharded pass writing intermediate + final envelope checkpoints.
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                shards: 3,
                checkpoint: Some(ckpt.clone()),
                checkpoint_every: Some(50),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let full = String::from_utf8_lossy(&out).into_owned();
        assert_eq!(code, 0, "{full}");
        assert!(full.contains("checkpoint written"), "{full}");

        // Resuming the envelope re-ingests nothing, reaches the same verdict.
        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                shards: 3,
                resume: Some(ckpt.clone()),
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let resumed = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{resumed}");
        assert!(resumed.contains("resumed from"), "{resumed}");
        assert!(resumed.contains("verdict: CLEAN"), "{resumed}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn degraded_verify_tolerates_broken_history() {
        use leopard_core::{CaptureHeader, CaptureWriter, TraceBuilder, CAPTURE_VERSION};

        // H006 phantom read: value 777 never written. Plain verify refuses
        // (exit 4); --degraded quarantines/demotes and stays clean.
        let mut b = TraceBuilder::new();
        b.read(10, 12, 0, 1, vec![(1, 777)]);
        b.commit(13, 15, 0, 1);
        let header = CaptureHeader {
            version: CAPTURE_VERSION,
            description: "degraded tolerance".to_string(),
            preload: vec![],
        };
        let path = tmp("degraded");
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = CaptureWriter::new(file, &header).unwrap();
        for trace in b.build() {
            writer.write(&trace).unwrap();
        }
        writer.finish().unwrap();

        let mut out = Vec::new();
        let code = verify(
            &VerifyConfig {
                file: path.clone(),
                degraded: true,
                ..VerifyConfig::default()
            },
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("continuing in degraded mode"), "{text}");
        assert!(text.contains("coverage: DEGRADED"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn catalog_prints_all_profiles() {
        let mut out = Vec::new();
        assert_eq!(catalog(&mut out), 0);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("PostgreSQL"));
        assert!(text.contains("CockroachDB"));
        assert!(text.contains("MVTO"));
    }
}
