//! Offline stand-in for `rand` 0.9: splitmix64 core, the 0.9 method names
//! this workspace calls (`random`, `random_range`, `random_bool`,
//! `seed_from_u64`, `rand::rng()`). Statistical quality is adequate for
//! workload generation, nothing more.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a 64-bit output step.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values producible by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws a uniformly distributed value.
    fn sample_from(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardSample for u64 {
    fn sample_from(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}

impl StandardSample for u32 {
    fn sample_from(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_from(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_from(rng: &mut dyn FnMut() -> u64) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draws uniformly from the range. Panics if the range is empty.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// The user-facing RNG trait, mirroring `rand::Rng` 0.9 names.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        let mut step = || self.next_u64();
        T::sample_from(&mut step)
    }

    /// Uniform value in `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut step = || self.next_u64();
        range.sample(&mut step)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast RNG (splitmix64 in this stub).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0x51_7C_C1_B7_27_22_0A_95,
            }
        }
    }

    /// Standard RNG; same engine as [`SmallRng`] in this stub.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) SmallRng);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(seed))
        }
    }

    /// Handle to a per-thread RNG, mirroring `rand::rngs::ThreadRng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    thread_local! {
        pub(crate) static THREAD_RNG: std::cell::RefCell<SmallRng> = {
            // unique-ish per thread without wall-clock access
            static COUNTER: std::sync::atomic::AtomicU64 =
                std::sync::atomic::AtomicU64::new(0xC0FF_EE11);
            let n = COUNTER.fetch_add(0x9E37_79B9, std::sync::atomic::Ordering::SeqCst);
            std::cell::RefCell::new(SmallRng::seed_from_u64(n))
        };
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }
}

/// Returns the thread-local RNG handle, mirroring `rand::rng()`.
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}
