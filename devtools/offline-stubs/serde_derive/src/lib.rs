//! Offline stand-in for `serde_derive`.
//!
//! Parses the item token stream by hand (no `syn`/`quote`) and emits impls
//! of the *stub* `serde::Serialize` / `serde::Deserialize` traits, which use
//! a simple JSON-shaped `Content` tree as their data model. Supports exactly
//! the shapes this workspace uses: non-generic named structs, tuple structs,
//! unit structs, and enums with unit / tuple / struct variants, mapped to
//! serde's default externally-tagged JSON representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Collects tokens of a type until a top-level comma, tracking `<`/`>` depth
/// so `BTreeMap<K, V>` stays one type. Returns (type-string, reached-end).
fn take_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&iter.next().unwrap().to_string());
        continue;
    }
    // consume the trailing comma if present
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        iter.next();
    }
    out
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility tokens.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // the bracketed attribute body
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => break,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        let ty = take_type(&mut iter);
        fields.push(Field { name, ty });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut tys = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let ty = take_type(&mut iter);
        if ty.is_empty() {
            break;
        }
        tys.push(ty);
    }
    Ok(tys)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(parse_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // consume an optional trailing comma between variants
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "stub serde_derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(parse_tuple_fields(g.stream())?)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        kw => Err(format!("cannot derive on `{kw}` item")),
    }
}

fn is_option(ty: &str) -> bool {
    ty.starts_with("Option") || ty.starts_with(":: core :: option :: Option")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(v) => v,
        Err(e) => return error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(tys) if tys.len() == 1 => {
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Shape::TupleStruct(tys) => {
            let entries: Vec<String> = (0..tys.len())
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    VariantKind::Tuple(tys) if tys.len() == 1 => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_content(f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(tys) => {
                        let binds: Vec<String> = (0..tys.len()).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..tys.len())
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Content::Seq(vec![{items}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_content({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Content::Map(vec![{items}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(v) => v,
        Err(e) => return error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(&name, f)).collect();
            format!(
                "let map = content.as_map().ok_or_else(|| \
                 ::serde::DeError(format!(\"{name}: expected object, got {{}}\", content.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(tys) if tys.len() == 1 => {
            format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Shape::TupleStruct(tys) => {
            let n = tys.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = content.as_seq().ok_or_else(|| \
                 ::serde::DeError(\"{name}: expected array\".to_string()))?;\n\
                 if seq.len() != {n} {{ return Err(::serde::DeError(\
                 format!(\"{name}: expected {n} elements, got {{}}\", seq.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", v = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(tys) if tys.len() == 1 => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_content(payload)?)),",
                        v = v.name
                    )),
                    VariantKind::Tuple(tys) => {
                        let n = tys.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let seq = payload.as_seq().ok_or_else(|| \
                             ::serde::DeError(\"{name}::{v}: expected array\".to_string()))?; \
                             if seq.len() != {n} {{ return Err(::serde::DeError(\
                             \"{name}::{v}: wrong arity\".to_string())); }} \
                             Ok({name}::{v}({items})) }},",
                            v = v.name,
                            items = items.join(", ")
                        ))
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| named_field_init(&format!("{name}::{}", v.name), f))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let map = payload.as_map().ok_or_else(|| \
                             ::serde::DeError(\"{name}::{v}: expected object\".to_string()))?; \
                             Ok({name}::{v} {{ {inits} }}) }},",
                            v = v.name,
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match content {{\n\
                   ::serde::Content::Str(s) => match s.as_str() {{\n\
                     {units}\n\
                     other => Err(::serde::DeError(format!(\"{name}: unknown variant {{other}}\"))),\n\
                   }},\n\
                   ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                     match tag.as_str() {{\n\
                       {tagged}\n\
                       other => Err(::serde::DeError(format!(\"{name}: unknown variant {{other}}\"))),\n\
                     }}\n\
                   }}\n\
                   other => Err(::serde::DeError(format!(\"{name}: expected variant, got {{}}\", other.kind()))),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `field: <lookup-and-deserialize>` initializer for one named field.
/// Missing `Option<_>` fields become `None` (serde's behavior); any other
/// missing field is an error.
fn named_field_init(owner: &str, f: &Field) -> String {
    if is_option(&f.ty) {
        format!(
            "{n}: match ::serde::content_get(map, \"{n}\") {{ \
               Some(c) => ::serde::Deserialize::from_content(c)?, None => None }}",
            n = f.name
        )
    } else {
        format!(
            "{n}: ::serde::Deserialize::from_content(::serde::content_get(map, \"{n}\")\
             .ok_or_else(|| ::serde::DeError(\"{owner}: missing field {n}\".to_string()))?)?",
            n = f.name
        )
    }
}
