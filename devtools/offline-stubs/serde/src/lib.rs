//! Offline stand-in for `serde`.
//!
//! Exposes the same names this workspace imports (`Serialize`, `Deserialize`,
//! and the derive macros) but over a radically simpler data model: values
//! serialize into a JSON-shaped [`Content`] tree that the stub `serde_json`
//! prints and parses. Functional — round-trips real data — but supports only
//! what the workspace actually uses. Never part of the published build; wired
//! in exclusively through `devtools/offline-stubs/patch.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Human tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }

    /// Borrow as object entries.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array elements.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a key in object entries (first match, like serde_json).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a plain message, `Display`-compatible with how the
/// workspace consumes `serde_json::Error` (via `to_string()`).
#[derive(Debug)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Stub serialization trait: render into a [`Content`] tree.
pub trait Serialize {
    /// Serialize `self` into the JSON-shaped data model.
    fn to_content(&self) -> Content;
}

/// Stub deserialization trait: rebuild from a [`Content`] tree. The `'de`
/// lifetime only mirrors real serde's signature.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value from the JSON-shaped data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => Err(DeError(format!("expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => Err(DeError(format!("expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            // Dev shim: leak to satisfy `&'static str` fields (e.g. catalog
            // profiles). Bounded by test-input size; never in production.
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(s) if s.len() == 2 => {
                Ok((A::from_content(&s[0])?, B::from_content(&s[1])?))
            }
            other => Err(DeError(format!("expected 2-tuple, got {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(s) if s.len() == 3 => Ok((
                A::from_content(&s[0])?,
                B::from_content(&s[1])?,
                C::from_content(&s[2])?,
            )),
            other => Err(DeError(format!("expected 3-tuple, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}
