//! Offline stand-in for `criterion`: enough API to compile and smoke-run the
//! workspace benches (each closure runs a handful of times; no statistics,
//! no reports).

use std::fmt::Display;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _c: self }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        println!("  bench: {}", id.into().label);
        let mut b = Bencher { iters: 3 };
        f(&mut b);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window (ignored).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        println!("  bench: {}", id.into().label);
        let mut b = Bencher { iters: 3 };
        f(&mut b);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        println!("  bench: {}", id.into().label);
        let mut b = Bencher { iters: 3 };
        f(&mut b, input);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs the routine a few times (no measurement in this stub).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declares the unit of work per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bundles benchmark functions into a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
