//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's non-poisoning API shape.

use std::sync;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RwLock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Condition variable mirroring `parking_lot::Condvar`'s basic API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
