//! Offline stand-in for `crossbeam`: just the `channel` module surface this
//! workspace uses (`unbounded`, clonable `Sender`/`Receiver`, `try_recv`),
//! implemented over a mutex-guarded queue.

/// Multi-producer multi-consumer unbounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; clonable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half; clonable.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (This stub never reports disconnection on send; it exists for
    /// signature compatibility.)
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they observe
                // disconnection
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = match self.0.ready.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
    }
}
