//! Offline stand-in for `crossbeam`: just the `channel` module surface this
//! workspace uses (`unbounded`, `bounded`, clonable `Sender`/`Receiver`,
//! `send`/`try_send`, `recv`/`try_recv`, `len`), implemented over a
//! mutex-guarded queue.

/// Multi-producer multi-consumer channels, unbounded or bounded.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message is enqueued (wakes blocked receivers).
        ready: Condvar,
        /// Signalled when space frees up or a receiver drops (wakes
        /// senders blocked on a full bounded channel).
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Capacity; 0 means unbounded.
        cap: usize,
    }

    /// Sending half; clonable.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half; clonable.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained and
    /// every sender has been dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            cap,
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(0)
    }

    /// Creates a bounded channel of capacity `cap` (must be non-zero:
    /// this stub does not implement rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "offline-stub bounded channel needs capacity > 0");
        channel(cap)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they observe
                // disconnection
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full.
        /// Errors once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if self.0.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if self.0.cap == 0 || q.len() < self.0.cap {
                    q.push_back(value);
                    drop(q);
                    self.0.ready.notify_one();
                    return Ok(());
                }
                q = match self.0.space.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Enqueues without blocking; fails on a full bounded channel or
        /// when every receiver has been dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.0.cap != 0 && q.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last receiver gone: wake blocked senders so they observe
                // disconnection
                self.0.space.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.0.space.notify_one();
                    Ok(v)
                }
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = match self.0.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = match self.0.ready.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            match self.0.queue.lock() {
                Ok(g) => g.len(),
                Err(p) => p.into_inner().len(),
            }
        }

        /// True when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
