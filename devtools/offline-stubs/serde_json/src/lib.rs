//! Offline stand-in for `serde_json`.
//!
//! Prints and parses real JSON text over the stub `serde::Content` data
//! model, so capture files round-trip for local testing. Supports the
//! functions this workspace calls: `to_string`, `to_writer`, `from_str`.

use serde::{Content, Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON error: a plain message (the workspace only calls `to_string()`).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer` (no trailing newline).
pub fn to_writer<W: std::io::Write, T: ?Sized + Serialize>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Deserializes a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(|e| Error(e.to_string()))
}

fn print_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Content::Str(s) => print_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_string(k, out);
                out.push(':');
                print_content(v, out);
            }
            out.push('}');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance over one UTF-8 scalar
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".to_string()))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
