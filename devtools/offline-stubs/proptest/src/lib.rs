//! Offline stand-in for `proptest`: deterministic case sampling with the
//! same surface syntax (`proptest!`, `prop_assert!`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`). No shrinking — a
//! failing case panics with its assert message directly.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 sampler; seeded per test case.
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// Fixed seed schedule so failures reproduce across runs.
    pub fn for_case(case: u64) -> Self {
        SampleRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED_5EED_5EED,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Number of cases each `proptest!` test runs.
pub const CASES: u64 = 128;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample_with(&self, rng: &mut SampleRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_with(&self, rng: &mut SampleRng) -> U {
        (self.f)(self.inner.sample_with(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_with(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_with(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_with(&self, rng: &mut SampleRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_with(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample_with(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_with(rng: &mut SampleRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut SampleRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut SampleRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_with(&self, rng: &mut SampleRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-test configuration (accepted, ignored).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Requested case count (ignored; the stub always runs [`CASES`]).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SampleRng, Strategy};
        use std::ops::Range;

        /// Size specification for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for variable-length vectors.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_with(&self, rng: &mut SampleRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.sample_with(rng)).collect()
            }
        }

        /// `proptest::collection::vec`: a vector of `element` values with a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            for __case in 0..$crate::CASES {
                let mut __rng = $crate::SampleRng::for_case(__case);
                $(let $pat = $crate::Strategy::sample_with(&($strat), &mut __rng);)*
                { $body }
            }
        }
    )*};
}

/// Asserts a condition inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
