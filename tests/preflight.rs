//! History preflight (H001–H006): seeded-mutation property tests plus the
//! golden guarantee that every built-in workload captures cleanly.
//!
//! Each proptest generates a random well-formed serial history, applies one
//! targeted mutation, and asserts the analyzer flags exactly the intended
//! diagnostic class. The golden tests mirror `leopard record`: run each
//! bundled workload against the clean engine at every isolation level and
//! require a preflight with no error-severity diagnostics (and, for BlindW
//! with its globally unique values, none at all).

use leopard::{
    DiagCode, Interval, IsolationLevel, Key, OpKind, PreflightAnalyzer, PreflightConfig,
    PreflightReport, Severity, Timestamp, Trace, TraceBuilder, TxnId, Value,
};
use leopard_db::{Database, DbConfig};
use leopard_workloads::{
    preload_database, run_collect, BlindW, BlindWVariant, RunLimit, SmallBank, TpcC, WorkloadGen,
    YcsbA,
};
use proptest::prelude::*;

/// The shared preload for the synthetic histories: key 0..8 start at 0.
fn preload() -> Vec<(Key, Value)> {
    (0..8).map(|k| (Key(k), Value(0))).collect()
}

fn analyze(traces: &[Trace]) -> PreflightReport {
    PreflightAnalyzer::analyze(PreflightConfig::default(), preload(), traces)
}

fn codes(report: &PreflightReport) -> Vec<DiagCode> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

/// Builds a well-formed serial history: txn i reads its key's current
/// value, writes a globally unique value, and commits; all on one client
/// with strictly increasing timestamps.
fn serial_history(ops: &[u64]) -> Vec<Trace> {
    let mut state: Vec<u64> = vec![0; 8];
    let mut b = TraceBuilder::new();
    let mut ts = 10u64;
    for (i, &key) in ops.iter().enumerate() {
        let key = key % 8;
        let txn = i as u64 + 1;
        let unique = 1_000 + i as u64;
        b.read(ts, ts + 2, 0, txn, vec![(key, state[key as usize])]);
        b.write(ts + 3, ts + 5, 0, txn, vec![(key, unique)]);
        b.commit(ts + 6, ts + 8, 0, txn);
        state[key as usize] = unique;
        ts += 10;
    }
    b.build()
}

proptest! {
    /// Sanity: unmutated histories produce zero diagnostics.
    #[test]
    fn generated_histories_are_clean(ops in prop::collection::vec(0u64..8, 1..24)) {
        let report = analyze(&serial_history(&ops));
        prop_assert!(report.is_clean(), "{report}");
    }

    /// H001: inverting one interval (as a corrupt capture would, bypassing
    /// `Interval::new`) is flagged as an error.
    #[test]
    fn seeded_h001_inverted_interval(
        ops in prop::collection::vec(0u64..8, 1..24),
        pick in any::<u64>(),
    ) {
        let mut traces = serial_history(&ops);
        let i = (pick % traces.len() as u64) as usize;
        let iv = traces[i].interval;
        traces[i].interval = Interval { lo: iv.hi.saturating_add(1), hi: iv.lo };
        let report = analyze(&traces);
        prop_assert!(codes(&report).contains(&DiagCode::H001), "{report}");
        prop_assert!(report.has_errors());
    }

    /// H002: pulling a later trace's `ts_bef` below its client's clock is
    /// flagged as an error (Theorem 1 precondition).
    #[test]
    fn seeded_h002_client_clock_backwards(ops in prop::collection::vec(0u64..8, 1..24)) {
        let mut traces = serial_history(&ops);
        let last = traces.len() - 1;
        traces[last].interval = Interval { lo: Timestamp(0), hi: Timestamp(1) };
        let report = analyze(&traces);
        prop_assert!(codes(&report).contains(&DiagCode::H002), "{report}");
        prop_assert!(report.has_errors());
    }

    /// H003 (duplicate): a second terminal op for a committed transaction
    /// is an error.
    #[test]
    fn seeded_h003_duplicate_terminal(
        ops in prop::collection::vec(0u64..8, 1..24),
        pick in any::<u64>(),
    ) {
        let mut traces = serial_history(&ops);
        let txn = TxnId(pick % ops.len() as u64 + 1);
        let end = traces.last().map_or(100, |t| t.interval.hi.0) + 10;
        let mut b = TraceBuilder::new();
        b.commit(end, end + 2, 0, txn.0);
        traces.extend(b.build());
        let report = analyze(&traces);
        let h003: Vec<_> = report.with_code(DiagCode::H003).collect();
        prop_assert_eq!(h003.len(), 1, "{}", report);
        prop_assert_eq!(h003[0].severity, Severity::Error);
        prop_assert_eq!(h003[0].txn, txn);
    }

    /// H003 (missing): dropping a final commit demotes to a warning — the
    /// capture is truncated, not corrupt, so verify must not refuse it.
    #[test]
    fn seeded_h003_missing_terminal_is_warning(ops in prop::collection::vec(0u64..8, 1..24)) {
        let mut traces = serial_history(&ops);
        traces.pop(); // the last trace of a serial history is a commit
        let report = analyze(&traces);
        let h003: Vec<_> = report.with_code(DiagCode::H003).collect();
        prop_assert_eq!(h003.len(), 1, "{}", report);
        prop_assert_eq!(h003[0].severity, Severity::Warning);
        prop_assert!(!report.has_errors(), "{}", report);
    }

    /// H004: an operation appearing after its transaction's commit is an
    /// error.
    #[test]
    fn seeded_h004_op_after_terminal(
        ops in prop::collection::vec(0u64..8, 1..24),
        pick in any::<u64>(),
    ) {
        let mut traces = serial_history(&ops);
        let txn = pick % ops.len() as u64 + 1;
        let end = traces.last().map_or(100, |t| t.interval.hi.0) + 10;
        let mut b = TraceBuilder::new();
        b.read(end, end + 2, 0, txn, vec![(0, 0)]);
        traces.extend(b.build());
        let report = analyze(&traces);
        let h004: Vec<_> = report.with_code(DiagCode::H004).collect();
        prop_assert_eq!(h004.len(), 1, "{}", report);
        prop_assert_eq!(h004[0].txn, TxnId(txn));
        prop_assert!(report.has_errors());
    }

    /// H005: re-installing an already-installed `(key, value)` pair breaks
    /// the unique-writes assumption — a warning, never a refusal.
    #[test]
    fn seeded_h005_duplicate_install_is_warning(
        ops in prop::collection::vec(0u64..8, 2..24),
        pick in any::<u64>(),
    ) {
        let mut traces = serial_history(&ops);
        let i = (pick % ops.len() as u64) as usize;
        let dup_key = ops[i] % 8;
        let dup_value = 1_000 + i as u64; // the value txn i+1 installed
        let end = traces.last().map_or(100, |t| t.interval.hi.0) + 10;
        let txn = ops.len() as u64 + 1;
        let mut b = TraceBuilder::new();
        b.write(end, end + 2, 0, txn, vec![(dup_key, dup_value)]);
        b.commit(end + 3, end + 5, 0, txn);
        traces.extend(b.build());
        let report = analyze(&traces);
        let h005: Vec<_> = report.with_code(DiagCode::H005).collect();
        prop_assert_eq!(h005.len(), 1, "{}", report);
        prop_assert_eq!(h005[0].severity, Severity::Warning);
        prop_assert!(!report.has_errors(), "{}", report);
    }

    /// H006: a read observing a value nothing wrote or preloaded is an
    /// error.
    #[test]
    fn seeded_h006_phantom_read(ops in prop::collection::vec(0u64..8, 1..24)) {
        let mut traces = serial_history(&ops);
        let end = traces.last().map_or(100, |t| t.interval.hi.0) + 10;
        let txn = ops.len() as u64 + 1;
        let mut b = TraceBuilder::new();
        b.read(end, end + 2, 0, txn, vec![(3, 999_999_999)]);
        b.commit(end + 3, end + 5, 0, txn);
        traces.extend(b.build());
        let report = analyze(&traces);
        let h006: Vec<_> = report.with_code(DiagCode::H006).collect();
        prop_assert_eq!(h006.len(), 1, "{}", report);
        prop_assert_eq!(h006[0].txn, TxnId(txn));
        prop_assert!(report.has_errors());
    }
}

/// The `op` position reported in a diagnostic is 1-based in the stream, so
/// line `op + 1` of a capture file (after the header) is the offender.
#[test]
fn diagnostic_positions_are_stream_positions() {
    let mut traces = serial_history(&[0, 1]);
    let iv = traces[3].interval;
    traces[3].interval = Interval {
        lo: iv.hi.saturating_add(1),
        hi: iv.lo,
    };
    let report = analyze(&traces);
    let h001: Vec<_> = report.with_code(DiagCode::H001).collect();
    assert_eq!(h001.len(), 1);
    assert_eq!(h001[0].op, 4);
}

/// Mirrors `leopard record` + `leopard lint-history` in-process: run the
/// clean engine, preflight the merged capture stream.
fn preflight_workload(
    proto: &dyn WorkloadGen,
    gens: Vec<Box<dyn WorkloadGen>>,
    level: IsolationLevel,
) -> PreflightReport {
    let db = Database::new(DbConfig::at(level));
    let preload = preload_database(&db, proto);
    let run = run_collect(&db, gens, RunLimit::Txns(120), 0xC0FFEE);
    let mut analyzer = PreflightAnalyzer::new(PreflightConfig::default());
    for (k, v) in preload {
        analyzer.preload(k, v);
    }
    for t in run.merged_sorted() {
        analyzer.observe(&t);
    }
    analyzer.finish()
}

fn clones<G: WorkloadGen + Clone + 'static>(g: &G, n: usize) -> Vec<Box<dyn WorkloadGen>> {
    (0..n).map(|_| Box::new(g.clone()) as _).collect()
}

const LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializable,
];

/// Golden: the clean engine's captures carry no error-severity diagnostics
/// at any isolation level, for every bundled workload. (Warnings are
/// allowed: e.g. SmallBank's amalgamate legitimately re-installs constant
/// zeros, tripping the H005 unique-writes advisory.)
#[test]
fn builtin_workloads_preflight_without_errors() {
    for level in LEVELS {
        let sb = SmallBank::new(64);
        let report = preflight_workload(&sb, clones(&sb, 4), level);
        assert!(!report.has_errors(), "smallbank at {level}: {report}");

        let ycsb = YcsbA::new(256, 0.9);
        let report = preflight_workload(&ycsb, clones(&ycsb, 4), level);
        assert!(!report.has_errors(), "ycsb at {level}: {report}");

        let tpcc = TpcC::new(1);
        let gens: Vec<Box<dyn WorkloadGen>> =
            (0..4).map(|_| Box::new(tpcc.for_client()) as _).collect();
        let report = preflight_workload(&tpcc, gens, level);
        assert!(!report.has_errors(), "tpcc at {level}: {report}");
    }
}

/// Golden: BlindW writes globally unique values, so its captures are fully
/// clean — not even warnings.
#[test]
fn blindw_preflights_fully_clean() {
    for level in LEVELS {
        for variant in [
            BlindWVariant::WriteOnly,
            BlindWVariant::ReadWrite,
            BlindWVariant::ReadWriteRange,
        ] {
            let g = BlindW::new(variant).with_table_size(256);
            let report = preflight_workload(&g, clones(&g, 4), level);
            assert!(report.is_clean(), "blindw {variant:?} at {level}: {report}");
        }
    }
}

/// A report with findings serializes with stable code strings — the `--json`
/// contract of `leopard lint-history`.
#[test]
fn report_json_uses_stable_codes() {
    let mut traces = serial_history(&[0]);
    traces[0].interval = Interval {
        lo: Timestamp(9),
        hi: Timestamp(2),
    };
    // Also make the last trace a duplicate commit for a second code.
    let mut b = TraceBuilder::new();
    b.commit(50, 52, 0, 1);
    traces.extend(b.build());
    let report = analyze(&traces);
    let json = serde_json::to_string(&report).expect("serializes");
    assert!(json.contains("\"H001\""), "{json}");
    assert!(json.contains("\"H003\""), "{json}");
}

// Keep OpKind & Value in the imports honest (they document the trace
// shape this suite mutates) even when the compiler could infer them away.
#[allow(dead_code)]
fn _shape(trace: &Trace) -> Option<(Key, Value)> {
    match &trace.op {
        OpKind::Write(set) | OpKind::Read(set) | OpKind::LockedRead(set) => set.first().copied(),
        _ => None,
    }
}
