//! Observability neutrality harness: the metrics/span layer must never
//! bend a verdict.
//!
//! Every committed golden-corpus capture is replayed twice — once with
//! the global observability registry disabled, once enabled — through
//! the sequential [`Verifier`] and the key-sharded [`ShardedVerifier`]
//! at 4 and 8 shards, and the verdict projections are compared
//! byte-for-byte. Mid-stream checkpoint JSON is compared the same way:
//! instrumentation must not leak into persisted state. The `obs` field
//! of [`VerifyOutcome`] itself is the one permitted difference (`None`
//! off, a snapshot on) and is excluded from the projection.
//!
//! A public-API exporter suite rides along, pinning the Prometheus text
//! exposition (monotone cumulative buckets, `+Inf` = `_count`, metric
//! and label name validity, HELP escaping) and the Chrome trace-event
//! document shape against private-detail drift.

use leopard_core::obs::{self, Counter, Gauge, HistId, Registry, Stage};
use leopard_core::{
    CaptureReader, Key, ShardedVerifier, Trace, Value, Verifier, VerifierConfig, VerifyOutcome,
};
use leopard_oracle::LEVELS;
use std::fs::File;
use std::path::PathBuf;

const SHARD_COUNTS: &[usize] = &[4, 8];

/// The comparable projection of a verdict: everything the verifier
/// deduced about the history. Excludes only the `obs` snapshot, which
/// is the observability payload under test.
fn comparable(o: &VerifyOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}",
        o.report, o.stats, o.counters.traces, o.counters.committed, o.counters.aborted, o.coverage
    )
}

struct RunResult {
    projection: String,
    mid_checkpoint: String,
    obs_present: bool,
}

fn run_one(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
    shards: usize,
) -> RunResult {
    let mid = traces.len() / 2;
    if shards > 1 {
        let mut v = ShardedVerifier::new(cfg, shards);
        for &(k, val) in preload {
            v.preload(k, val);
        }
        for t in &traces[..mid] {
            v.process(t);
        }
        let mid_checkpoint = v.checkpoint().to_json();
        for t in &traces[mid..] {
            v.process(t);
        }
        let outcome = v.finish();
        RunResult {
            projection: comparable(&outcome),
            mid_checkpoint,
            obs_present: outcome.obs.is_some(),
        }
    } else {
        let mut v = Verifier::new(cfg);
        for &(k, val) in preload {
            v.preload(k, val);
        }
        for t in &traces[..mid] {
            v.process(t);
        }
        let mid_checkpoint = v.checkpoint().to_json();
        for t in &traces[mid..] {
            v.process(t);
        }
        let outcome = v.finish();
        RunResult {
            projection: comparable(&outcome),
            mid_checkpoint,
            obs_present: outcome.obs.is_some(),
        }
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Corpus × {1, 4, 8} shards × observability {off, on}: identical
/// verdict projections and identical mid-stream checkpoints. The whole
/// sweep lives in one test function because the registry is
/// process-global; no other test in this binary touches it.
#[test]
fn observability_is_verdict_neutral_across_corpus_and_shards() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("jsonl")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no corpus captures found");

    obs::set_enabled(false);
    for path in &files {
        let name = path.file_name().expect("file name").to_string_lossy();
        let reader =
            CaptureReader::new(File::open(path).expect("open capture")).expect("capture header");
        let preload = reader.header().preload.clone();
        let traces: Vec<Trace> = reader
            .map(|t| t.expect("well-formed corpus trace"))
            .collect();
        for level in LEVELS {
            let cfg = VerifierConfig::for_level(level);
            for shards in std::iter::once(1usize).chain(SHARD_COUNTS.iter().copied()) {
                let what = format!("{name} @ {level:?} x{shards}");
                obs::set_enabled(false);
                let off = run_one(&preload, &traces, cfg, shards);
                assert!(
                    !off.obs_present,
                    "{what}: obs-off outcome carries a snapshot"
                );

                obs::reset();
                obs::set_enabled(true);
                let on = run_one(&preload, &traces, cfg, shards);
                let ingested = obs::counter_value(Counter::OpsIngested);
                obs::set_enabled(false);
                assert!(on.obs_present, "{what}: obs-on outcome lost its snapshot");

                assert_eq!(
                    off.projection, on.projection,
                    "{what}: enabling observability changed the verdict"
                );
                assert_eq!(
                    off.mid_checkpoint, on.mid_checkpoint,
                    "{what}: enabling observability changed the checkpoint image"
                );
                assert!(
                    ingested > 0,
                    "{what}: obs-on run recorded no ingested operations"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Public-API exporter suite: a private Registry per test, so these run
// concurrently without touching the global one.
// ---------------------------------------------------------------------

fn populated_registry() -> Box<Registry> {
    let r = Box::new(Registry::new());
    r.set_enabled(true);
    r.ctr_add(Counter::OpsIngested, 1234);
    r.ctr_add(Counter::GcPasses, 7);
    r.gauge_set(Gauge::Shards, 3);
    r.gauge_set(Gauge::WatermarkLag, 42);
    r.shard_busy_store(0, 1_000);
    r.shard_busy_store(1, 2_000);
    r.shard_busy_store(2, 3_000);
    for us in [10, 80, 300, 7_000, 2_000_000] {
        r.hist_observe(HistId::EpochApplyUs, us);
    }
    r.record_span(Stage::ShardBatch, 1, 100, 50);
    r.record_span(Stage::CertifierMerge, 0, 200, 25);
    r
}

fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[test]
fn exposition_lines_are_structurally_valid() {
    let r = populated_registry();
    let text = r.render_prometheus();
    assert!(!text.is_empty());
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().expect("HELP has a name");
            assert!(is_valid_name(name), "bad HELP name in {line:?}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().expect("TYPE has a name");
            let kind = it.next().expect("TYPE has a kind");
            assert!(is_valid_name(name), "bad TYPE name in {line:?}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE kind in {line:?}"
            );
            continue;
        }
        // A sample: `name{labels} value` or `name value`.
        let (head, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<u64>().is_ok(),
            "non-numeric value in {line:?}"
        );
        let name = head.split('{').next().expect("sample has a name");
        assert!(is_valid_name(name), "bad sample name in {line:?}");
        if let Some(labels) = head.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed label block in {line:?}"
                );
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label has =");
                    assert!(is_valid_name(k), "bad label name in {line:?}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "unquoted label value in {line:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn histogram_buckets_are_cumulative_and_capped_by_inf() {
    let r = populated_registry();
    let text = r.render_prometheus();
    let mut prev = 0u64;
    let mut inf = None;
    let mut count = None;
    for line in text.lines() {
        if line.starts_with("leopard_epoch_apply_us_bucket{le=\"+Inf\"}") {
            inf = line.rsplit(' ').next().and_then(|v| v.parse::<u64>().ok());
        } else if line.starts_with("leopard_epoch_apply_us_bucket") {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket value");
            assert!(v >= prev, "bucket counts must be cumulative: {line:?}");
            prev = v;
        } else if line.starts_with("leopard_epoch_apply_us_count") {
            count = line.rsplit(' ').next().and_then(|v| v.parse::<u64>().ok());
        }
    }
    assert_eq!(inf, Some(5), "+Inf bucket must count every observation");
    assert_eq!(count, inf, "_count must equal the +Inf bucket");
    // The 2s outlier is beyond the largest finite bound, so the largest
    // finite bucket must stay below the +Inf bucket.
    assert!(
        prev < 5,
        "outlier beyond the largest bound leaked into a finite bucket"
    );
}

#[test]
fn counters_are_monotonic_through_the_public_api() {
    let r = Box::new(Registry::new());
    r.set_enabled(true);
    let mut last = r.counter_value(Counter::Dispatched);
    for n in [1, 10, 100] {
        r.ctr_add(Counter::Dispatched, n);
        let now = r.counter_value(Counter::Dispatched);
        assert!(now > last, "counter went backwards: {last} -> {now}");
        last = now;
    }
    assert_eq!(last, 111);
}

#[test]
fn chrome_trace_document_names_every_lane() {
    let r = populated_registry();
    let trace = r.render_chrome_trace();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert!(trace.contains("\"traceEvents\""));
    // Two complete events were recorded, on the driver lane and shard 0.
    assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2);
    assert!(trace.contains("\"name\":\"shard-batch\""));
    assert!(trace.contains("\"name\":\"certifier-merge\""));
    assert!(trace.contains("driver/certifier"));
    assert!(trace.contains("shard-0"));
    // Metadata events name the lanes before any span references them.
    assert!(trace.contains("\"thread_name\""));
}

#[test]
fn snapshot_round_trips_counter_names() {
    let r = populated_registry();
    let snap = r.snapshot();
    assert_eq!(snap.counter("leopard_ops_ingested_total"), Some(1234));
    assert_eq!(snap.counter("leopard_gc_passes_total"), Some(7));
    assert_eq!(snap.counter("no_such_counter"), None);
    assert_eq!(snap.gauge("leopard_watermark_lag"), Some(42));
    assert_eq!(snap.shard_busy_us, vec![1_000, 2_000, 3_000]);
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    assert!(json.contains("\"leopard_ops_ingested_total\""));
}
