//! Chaos soundness sweep: 500 seeded degraded captures, zero false
//! positives.
//!
//! Each capture is generated clean at a declared isolation level, mangled
//! by a seeded [`DegradeSpec`] (dropped and duplicated deliveries, killed
//! terminals), and verified in degraded mode at its declared level. A
//! *correct* history damaged in transport must never be reported as an
//! isolation violation — any violation cell here is a false positive.
//! Every decision derives from the loop seeds, so a failure replays
//! exactly.

use leopard_oracle::{
    check_chaos_soundness, degradation_was_exercised, generate_clean_capture, ChaosSoundnessReport,
    CleanRunSpec, DegradeSpec, Schedule, LEVELS,
};

#[test]
fn five_hundred_degraded_captures_verify_clean() {
    let mut report = ChaosSoundnessReport::default();
    // 125 seeds × 4 levels = 500 captures, varying workload and schedule
    // so both serial and interleaved histories are swept.
    for seed in 0..125u64 {
        for (i, level) in LEVELS.into_iter().enumerate() {
            let workload = match seed % 3 {
                0 => "blindw-rw",
                1 => "blindw-rw+",
                _ => "smallbank",
            };
            let spec = CleanRunSpec {
                workload: workload.to_string(),
                rows: 16,
                clients: 3,
                txns_per_client: 8,
                level,
                seed: 1000 + seed,
                tick: 10,
                schedule: if seed % 2 == 0 {
                    Schedule::Serial
                } else {
                    Schedule::Interleaved
                },
            };
            let cap = generate_clean_capture(&spec).expect("clean capture");
            let degrade = DegradeSpec::moderate(seed * 4 + i as u64);
            check_chaos_soundness(&cap, level, &[degrade], &mut report);
        }
    }
    assert_eq!(report.cells.len(), 500);
    assert!(
        report.is_sound(),
        "false positives: {:?}",
        report.false_positives()
    );
    assert!(
        degradation_was_exercised(&report),
        "sweep never exercised a degradation path"
    );
}
