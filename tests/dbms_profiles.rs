//! Verifier configurations driven by the Fig. 1 catalog: systems that are
//! *not* PostgreSQL-shaped (no locks, different certifiers) still verify
//! correctly from the same traces.

use leopard::{
    catalog, CertifierRule, IsolationLevel, Mechanism, MechanismSet, SnapshotLevel, TraceBuilder,
    Verifier, VerifierConfig,
};
use leopard_core::{Key, Trace, Value};

fn verify_with(m: MechanismSet, preload: &[(u64, u64)], traces: &[Trace]) -> leopard::BugReport {
    let mut v = Verifier::new(VerifierConfig::for_mechanisms(m));
    for &(k, val) in preload {
        v.preload(Key(k), Value(val));
    }
    for t in traces {
        v.process(t);
    }
    v.finish().report
}

fn write_skew() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.read(0, 2, 0, 1, vec![(1, 0)]);
    b.read(1, 3, 1, 2, vec![(2, 0)]);
    b.write(10, 12, 0, 1, vec![(2, 5)]);
    b.write(11, 13, 1, 2, vec![(1, 6)]);
    b.commit(20, 22, 0, 1);
    b.commit(21, 23, 1, 2);
    b.build_sorted()
}

#[test]
fn occ_profile_flags_write_skew_as_cycle() {
    // FoundationDB-style: OCC+MVCC, no locks, generic acyclicity certifier.
    let fdb = catalog()
        .into_iter()
        .find(|p| p.name == "FoundationDB")
        .unwrap();
    let m = fdb.mechanisms_for(IsolationLevel::Serializable).unwrap();
    assert!(!m.mutual_exclusion);
    assert_eq!(m.certifier, Some(CertifierRule::AcyclicGraph));
    let report = verify_with(m, &[(1, 0), (2, 0)], &write_skew());
    assert!(
        report.count(Mechanism::SerializationCertifier) > 0,
        "write skew is a dependency cycle: {report}"
    );
}

#[test]
fn mvto_profile_flags_newer_to_older_dependency() {
    // CockroachDB-style: timestamp ordering. A transaction that starts
    // strictly later but is read *under* an older transaction's successor
    // chain produces a newer→older dependency, which MVTO prohibits.
    let crdb = catalog()
        .into_iter()
        .find(|p| p.name == "CockroachDB")
        .unwrap();
    let m = crdb.mechanisms_for(IsolationLevel::Serializable).unwrap();
    assert_eq!(m.certifier, Some(CertifierRule::MvtoTimestampOrder));

    // t1 (old) reads k1's initial version; t2 (newer) installs the direct
    // successor while t1 is still running; t1 commits after t2.
    // rw(t1 -> t2) points old -> new: fine. Then construct the reverse:
    // t3 starts after t2 committed yet reads the version t2 overwrote —
    // CR already flags that as a stale read; for a pure MVTO signal use
    // ww: t4 starts certainly after t5 but installs the *predecessor*
    // version. Simplest reliable trigger: reader-started-later with
    // an rw edge backwards is impossible in clean traces, so check the
    // rule directly on the graph level instead.
    use leopard_core::verify::DepGraph;
    use leopard_core::{DepKind, Interval, Timestamp, TxnId};
    let iv = |lo: u64, hi: u64| Interval::new(Timestamp(lo), Timestamp(hi));
    let mut g = DepGraph::default();
    g.add_node(TxnId(1), iv(0, 1), iv(50, 51));
    g.add_node(TxnId(2), iv(10, 11), iv(52, 53));
    let v = g.add_edge(
        TxnId(2),
        TxnId(1),
        DepKind::Rw,
        Some(CertifierRule::MvtoTimestampOrder),
    );
    assert!(v.is_some(), "newer->older dependency must be prohibited");
}

#[test]
fn sqlite_profile_checks_only_locks() {
    // SQLite: pure 2PL, no MVCC — consistent-read checking is off, so a
    // stale read is not CR-flagged, but concurrent lock holds still are.
    let sqlite = catalog().into_iter().find(|p| p.name == "SQLite").unwrap();
    let m = sqlite.mechanisms_for(IsolationLevel::Serializable).unwrap();
    assert!(m.consistent_read.is_none());

    // Stale read: no CR violation possible with CR off.
    let mut b = TraceBuilder::new();
    b.write(10, 12, 0, 1, vec![(1, 9)]);
    b.commit(13, 15, 0, 1);
    b.read(30, 32, 1, 2, vec![(1, 0)]); // stale, but unchecked
    b.commit(33, 35, 1, 2);
    let report = verify_with(m, &[(1, 0)], &b.build_sorted());
    assert!(report.is_clean(), "{report}");

    // Concurrent write locks: still an ME violation.
    let mut b = TraceBuilder::new();
    b.write(0, 10, 0, 1, vec![(1, 5)]);
    b.write(1, 9, 1, 2, vec![(1, 6)]);
    b.commit(11, 20, 0, 1);
    b.commit(12, 21, 1, 2);
    let report = verify_with(m, &[(1, 0)], &b.build_sorted());
    assert!(report.count(Mechanism::MutualExclusion) > 0);
}

#[test]
fn percolator_profile_has_no_lock_checking() {
    let tidb = catalog()
        .into_iter()
        .find(|p| p.name == "TiDB (Percolator)")
        .unwrap();
    let m = tidb
        .mechanisms_for(IsolationLevel::SnapshotIsolation)
        .unwrap();
    assert!(!m.mutual_exclusion);
    // Two writers whose lock spans would collide under 2PL: legal here,
    // because the profile does not promise locks.
    let mut b = TraceBuilder::new();
    b.write(0, 10, 0, 1, vec![(1, 5)]);
    b.write(1, 9, 1, 2, vec![(2, 6)]); // different keys: no FUW either
    b.commit(11, 20, 0, 1);
    b.commit(12, 21, 1, 2);
    let report = verify_with(m, &[(1, 0), (2, 0)], &b.build_sorted());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn statement_level_catalog_entries_accept_non_repeatable_reads() {
    for name in ["SingleStore", "Oracle / NuoDB / SAP HANA"] {
        let p = catalog().into_iter().find(|p| p.name == name).unwrap();
        let m = p.mechanisms_for(IsolationLevel::ReadCommitted).unwrap();
        assert_eq!(m.consistent_read, Some(SnapshotLevel::Statement));
        let mut b = TraceBuilder::new();
        b.read(10, 12, 1, 2, vec![(1, 0)]);
        b.write(20, 22, 0, 1, vec![(1, 9)]);
        b.commit(23, 25, 0, 1);
        b.read(30, 32, 1, 2, vec![(1, 9)]);
        b.commit(33, 35, 1, 2);
        let report = verify_with(m, &[(1, 0)], &b.build_sorted());
        assert!(report.is_clean(), "{name}: {report}");
    }
}
