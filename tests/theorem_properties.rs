//! Property-based tests (proptest) for the paper's theorems and the core
//! data-structure invariants.

use leopard::{IsolationLevel, PipelineConfig, TwoLevelPipeline, Verifier, VerifierConfig};
use leopard_core::interval::{resolve_exclusive_pair, PairOrder};
use leopard_core::verify::VersionClass;
use leopard_core::{ClientId, Interval, Key, OpKind, Timestamp, Trace, TxnId, Value};
use proptest::prelude::*;

fn iv(lo: u64, hi: u64) -> Interval {
    Interval::new(Timestamp(lo), Timestamp(hi))
}

/// Strategy: a well-formed "exclusive span" — start interval certainly
/// before end interval (program order within one transaction).
fn span() -> impl Strategy<Value = (Interval, Interval)> {
    (0u64..1000, 1u64..50, 0u64..50, 1u64..50).prop_map(|(s, w1, gap, w2)| {
        let a = iv(s, s + w1);
        let r = iv(s + w1 + gap, s + w1 + gap + w2);
        (a, r)
    })
}

proptest! {
    /// Theorem 3/4: for any two program-order-respecting spans, exactly
    /// one of {first-then-second, second-then-first, certainly-concurrent}
    /// holds, and the answer is antisymmetric under argument swap.
    #[test]
    fn resolve_is_total_and_antisymmetric(
        (a0, r0) in span(),
        (a1, r1) in span(),
    ) {
        let fwd = resolve_exclusive_pair(&a0, &r0, &a1, &r1);
        let bwd = resolve_exclusive_pair(&a1, &r1, &a0, &r0);
        match fwd {
            PairOrder::FirstThenSecond => prop_assert_eq!(bwd, PairOrder::SecondThenFirst),
            PairOrder::SecondThenFirst => prop_assert_eq!(bwd, PairOrder::FirstThenSecond),
            PairOrder::CertainlyConcurrent => prop_assert_eq!(bwd, PairOrder::CertainlyConcurrent),
        }
    }

    /// Soundness of resolution: when the true order is knowable because
    /// the spans are disjoint in time, resolution must report it.
    #[test]
    fn resolve_agrees_with_disjoint_truth((a0, r0) in span(), shift in 1u64..10_000) {
        // Span 1 is span 0 moved entirely after it.
        let offset = r0.hi.0 + shift;
        let a1 = iv(a0.lo.0 + offset, a0.hi.0 + offset);
        let r1 = iv(r0.lo.0 + offset, r0.hi.0 + offset);
        prop_assert_eq!(
            resolve_exclusive_pair(&a0, &r0, &a1, &r1),
            PairOrder::FirstThenSecond
        );
    }

    /// Interval algebra: `certainly_before` and `overlaps` partition every
    /// pair of intervals.
    #[test]
    fn interval_relations_partition(
        a_lo in 0u64..1000, a_w in 0u64..100,
        b_lo in 0u64..1000, b_w in 0u64..100,
    ) {
        let a = iv(a_lo, a_lo + a_w);
        let b = iv(b_lo, b_lo + b_w);
        let relations = [
            a.certainly_before(&b),
            b.certainly_before(&a),
            a.overlaps(&b),
        ];
        // Degenerate equal instants may satisfy certainly_before both
        // ways; otherwise exactly one relation holds.
        let count = relations.iter().filter(|r| **r).count();
        if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
            prop_assert_eq!(count, 2);
        } else {
            prop_assert_eq!(count, 1, "a={} b={}", a, b);
        }
    }

    /// Theorem 1: the two-level pipeline dispatches any set of per-client
    /// monotone streams in globally non-decreasing ts_bef order, without
    /// losing or duplicating traces.
    #[test]
    fn pipeline_dispatch_order_holds(
        streams in prop::collection::vec(
            prop::collection::vec((0u64..10_000, 1u64..100), 0..60),
            1..6,
        ),
        opt in any::<bool>(),
    ) {
        let cfg = if opt { PipelineConfig::default() } else { PipelineConfig::without_optimizations() };
        let mut pipeline = TwoLevelPipeline::new(streams.len(), cfg);
        let mut expected = 0u64;
        for (c, stream) in streams.iter().enumerate() {
            let mut ts = 0u64;
            for &(gap, width) in stream {
                ts += gap; // non-decreasing per client
                let trace = Trace::new(
                    iv(ts, ts + width),
                    ClientId(c as u32),
                    TxnId(expected),
                    OpKind::Commit,
                );
                pipeline.push(c, trace).expect("monotone push");
                expected += 1;
            }
            pipeline.close(c).expect("valid client");
        }
        let mut out = Vec::new();
        pipeline.drain_available(&mut out);
        prop_assert!(pipeline.is_exhausted(), "no traces may be left behind");
        prop_assert_eq!(out.len() as u64, expected);
        prop_assert!(out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        // No duplicates: every TxnId appears exactly once.
        let mut ids: Vec<u64> = out.iter().map(|t| t.txn.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, expected);
    }

    /// Theorem 2 environment: classification against a snapshot is a
    /// partition with exactly one pivot among "past" versions, and
    /// candidate membership excludes exactly future+garbage+pending.
    #[test]
    fn candidate_classification_invariants(
        versions in prop::collection::vec((0u64..2_000, 1u64..50, 0u64..30, 1u64..50), 1..12),
        snap_lo in 0u64..2_500,
        snap_w in 1u64..100,
    ) {
        use leopard_core::verify::VersionStore;
        let mut store = VersionStore::default();
        for (i, &(w_lo, w_w, gap, c_w)) in versions.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            let install = iv(w_lo, w_lo + w_w);
            let commit = iv(w_lo + w_w + gap, w_lo + w_w + gap + c_w);
            store.install(Key(1), Value(i as u64 + 1), txn, install, install);
            store.commit(txn, &[Key(1)], commit);
        }
        let snapshot = iv(snap_lo, snap_lo + snap_w);
        let rec = store.record(Key(1)).expect("versions inserted");
        let classes = rec.classify(&snapshot);
        let pivots = classes.iter().filter(|c| **c == VersionClass::Pivot).count();
        let past = classes.iter().filter(|c| matches!(c,
            VersionClass::Pivot | VersionClass::PivotOverlap | VersionClass::Garbage)).count();
        if past > 0 {
            prop_assert_eq!(pivots, 1, "exactly one pivot among past versions");
        } else {
            prop_assert_eq!(pivots, 0);
        }
        // Future versions really are certainly-after; garbage certainly
        // overwritten before the pivot.
        let pivot_vis = rec.entries().iter().zip(&classes)
            .find(|(_, c)| **c == VersionClass::Pivot)
            .map(|(e, _)| e.visibility.expect("committed"));
        for (e, class) in rec.entries().iter().zip(&classes) {
            let vis = e.visibility.expect("all committed here");
            match class {
                VersionClass::Future => prop_assert!(snapshot.certainly_before(&vis)),
                VersionClass::Garbage => {
                    prop_assert!(vis.certainly_before(&pivot_vis.expect("pivot exists")));
                }
                VersionClass::Overlap => prop_assert!(vis.overlaps(&snapshot)),
                _ => {}
            }
        }
    }

    /// Ground truth: random serial (non-overlapping) histories always
    /// verify clean at every isolation level.
    #[test]
    fn serial_histories_are_always_clean(
        ops in prop::collection::vec((0u64..8, 0u64..16, any::<bool>()), 1..40),
        level_idx in 0usize..4,
    ) {
        let level = [
            IsolationLevel::ReadCommitted,
            IsolationLevel::RepeatableRead,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ][level_idx];
        // Execute transactions strictly serially against a model store.
        let mut state: leopard_core::fxhash::FxHashMap<u64, u64> =
            (0..8).map(|k| (k, 0)).collect();
        let mut traces = Vec::new();
        let mut ts = 10u64;
        let mut next_value = 1000u64;
        for (i, &(key, _, is_write)) in ops.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            let op = if is_write {
                next_value += 1;
                state.insert(key, next_value);
                OpKind::Write(vec![(Key(key), Value(next_value))])
            } else {
                OpKind::Read(vec![(Key(key), Value(state[&key]))])
            };
            traces.push(Trace::new(iv(ts, ts + 2), ClientId(0), txn, op));
            traces.push(Trace::new(iv(ts + 3, ts + 5), ClientId(0), txn, OpKind::Commit));
            ts += 10;
        }
        let mut v = Verifier::new(VerifierConfig::for_level(level));
        for k in 0..8 {
            v.preload(Key(k), Value(0));
        }
        for t in &traces {
            v.process(t);
        }
        let out = v.finish();
        prop_assert!(out.report.is_clean(), "serial history flagged: {}", out.report);
    }
}
