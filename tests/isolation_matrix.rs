//! The anomaly × isolation-level matrix, checked against hand-built
//! histories: each classic anomaly must be flagged exactly at the levels
//! that prohibit it (Fig. 1's semantics, via the four mechanisms).

use leopard::{IsolationLevel, TraceBuilder, Verifier, VerifierConfig};
use leopard_core::{Key, Trace, Value};

fn verify(level: IsolationLevel, preload: &[(u64, u64)], traces: &[Trace]) -> bool {
    let mut v = Verifier::new(VerifierConfig::for_level(level));
    for &(k, val) in preload {
        v.preload(Key(k), Value(val));
    }
    for t in traces {
        v.process(t);
    }
    v.finish().report.is_clean()
}

const ALL: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializable,
];

/// t2 reads t1's uncommitted write.
fn dirty_read() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.write(10, 12, 0, 1, vec![(1, 9)]);
    b.read(20, 22, 1, 2, vec![(1, 9)]);
    b.commit(23, 25, 1, 2);
    b.commit(30, 32, 0, 1);
    b.build_sorted()
}

#[test]
fn dirty_read_is_flagged_at_every_level() {
    for level in ALL {
        assert!(
            !verify(level, &[(1, 0)], &dirty_read()),
            "dirty read must be flagged at {level}"
        );
    }
}

/// t2 reads k twice; t1 commits an update in between; second read sees it.
fn non_repeatable_read() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.read(10, 12, 1, 2, vec![(1, 0)]);
    b.write(20, 22, 0, 1, vec![(1, 9)]);
    b.commit(23, 25, 0, 1);
    b.read(30, 32, 1, 2, vec![(1, 9)]);
    b.commit(33, 35, 1, 2);
    b.build_sorted()
}

#[test]
fn non_repeatable_read_is_legal_only_at_rc() {
    assert!(verify(
        IsolationLevel::ReadCommitted,
        &[(1, 0)],
        &non_repeatable_read()
    ));
    for level in [
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        assert!(
            !verify(level, &[(1, 0)], &non_repeatable_read()),
            "non-repeatable read must be flagged at {level}"
        );
    }
}

/// Two transactions read k, then both update it, both commit: the first
/// update is lost. Both transactions are certainly concurrent.
fn lost_update() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.read(0, 2, 0, 1, vec![(1, 0)]);
    b.read(1, 3, 1, 2, vec![(1, 0)]);
    b.write(10, 12, 0, 1, vec![(1, 5)]);
    b.write(30, 32, 1, 2, vec![(1, 6)]);
    b.commit(20, 22, 0, 1);
    b.commit(40, 42, 1, 2);
    b.build_sorted()
}

#[test]
fn lost_update_is_flagged_where_fuw_is_promised() {
    // At RC a lost update is legal (statement snapshots see the newer
    // value, no FUW promised)... but the RC history must still read
    // consistently; this constructed history does: t2's write happens
    // after t1 committed.
    assert!(verify(
        IsolationLevel::ReadCommitted,
        &[(1, 0)],
        &lost_update()
    ));
    for level in [
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        assert!(
            !verify(level, &[(1, 0)], &lost_update()),
            "lost update must be flagged at {level}"
        );
    }
}

/// Classic write skew: disjoint writes based on overlapping reads.
fn write_skew() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.read(0, 2, 0, 1, vec![(1, 0)]);
    b.read(1, 3, 1, 2, vec![(2, 0)]);
    b.write(10, 12, 0, 1, vec![(2, 5)]);
    b.write(11, 13, 1, 2, vec![(1, 6)]);
    b.commit(20, 22, 0, 1);
    b.commit(21, 23, 1, 2);
    b.build_sorted()
}

#[test]
fn write_skew_is_flagged_only_at_serializable() {
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
    ] {
        assert!(
            verify(level, &[(1, 0), (2, 0)], &write_skew()),
            "write skew is legal at {level}"
        );
    }
    assert!(
        !verify(
            IsolationLevel::Serializable,
            &[(1, 0), (2, 0)],
            &write_skew()
        ),
        "write skew must be flagged at SR"
    );
}

/// A read-only transaction sees a half-applied transfer (inconsistent
/// snapshot): t1 moved 5 from k1 to k2 atomically, but t3 observes the
/// debit without the credit long after t1 committed.
fn inconsistent_snapshot() -> Vec<Trace> {
    let mut b = TraceBuilder::new();
    b.write(10, 12, 0, 1, vec![(1, 5), (2, 15)]);
    b.commit(13, 15, 0, 1);
    b.read(30, 32, 1, 3, vec![(1, 5)]);
    b.read(33, 35, 1, 3, vec![(2, 10)]); // stale credit
    b.commit(36, 38, 1, 3);
    b.build_sorted()
}

#[test]
fn inconsistent_snapshot_is_flagged_at_snapshot_levels() {
    for level in [
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        assert!(
            !verify(level, &[(1, 10), (2, 10)], &inconsistent_snapshot()),
            "inconsistent snapshot must be flagged at {level}"
        );
    }
    // Statement-level RC also flags it here: by the second read the
    // credit is long committed, so value 10 is garbage even per-statement.
    assert!(!verify(
        IsolationLevel::ReadCommitted,
        &[(1, 10), (2, 10)],
        &inconsistent_snapshot()
    ));
}
