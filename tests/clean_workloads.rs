//! End-to-end soundness: clean engines must verify clean (no false
//! positives) across every workload and isolation level.

use leopard::testseed::test_seed;
use leopard::{IsolationLevel, Verifier, VerifierConfig};
use leopard_db::{Database, DbConfig};
use leopard_workloads::{
    preload_database, run_collect, BlindW, BlindWVariant, RunLimit, SmallBank, TpcC, WorkloadGen,
    YcsbA,
};

fn verify_run(
    gens: Vec<Box<dyn WorkloadGen>>,
    proto: &dyn WorkloadGen,
    level: IsolationLevel,
    txns: u64,
    seed: u64,
) -> leopard::VerifyOutcome {
    let db = Database::new(DbConfig::at(level));
    let preload = preload_database(&db, proto);
    let out = run_collect(&db, gens, RunLimit::Txns(txns), seed);
    let mut verifier = Verifier::new(VerifierConfig::for_level(level));
    for (k, v) in preload {
        verifier.preload(k, v);
    }
    for t in out.merged_sorted() {
        verifier.process(&t);
    }
    let outcome = verifier.finish();
    assert_eq!(
        outcome.counters.committed, out.stats.committed,
        "verifier saw all commits"
    );
    outcome
}

fn clones<G: WorkloadGen + Clone + 'static>(g: &G, n: usize) -> Vec<Box<dyn WorkloadGen>> {
    (0..n).map(|_| Box::new(g.clone()) as _).collect()
}

#[test]
fn blindw_rw_clean_at_serializable() {
    let seed = test_seed(0xC0FFEE);
    let g = BlindW::new(BlindWVariant::ReadWrite).with_table_size(256);
    let out = verify_run(clones(&g, 8), &g, IsolationLevel::Serializable, 150, seed);
    assert!(out.report.is_clean(), "seed={seed}: {}", out.report);
}

#[test]
fn smallbank_clean_at_serializable() {
    let seed = test_seed(0xC0FFEE);
    let g = SmallBank::new(64);
    let out = verify_run(clones(&g, 8), &g, IsolationLevel::Serializable, 150, seed);
    assert!(out.report.is_clean(), "seed={seed}: {}", out.report);
}

#[test]
fn tpcc_clean_at_serializable() {
    let seed = test_seed(0xC0FFEE);
    let g = TpcC::new(2);
    let gens: Vec<Box<dyn WorkloadGen>> = (0..6).map(|_| Box::new(g.for_client()) as _).collect();
    let out = verify_run(gens, &g, IsolationLevel::Serializable, 100, seed);
    assert!(out.report.is_clean(), "seed={seed}: {}", out.report);
}

#[test]
fn ycsb_clean_at_read_committed() {
    let seed = test_seed(0xC0FFEE);
    let g = YcsbA::new(512, 0.9);
    let out = verify_run(clones(&g, 8), &g, IsolationLevel::ReadCommitted, 400, seed);
    assert!(out.report.is_clean(), "seed={seed}: {}", out.report);
}

#[test]
fn smallbank_clean_at_snapshot_isolation() {
    let seed = test_seed(0xC0FFEE);
    let g = SmallBank::new(64);
    let out = verify_run(
        clones(&g, 8),
        &g,
        IsolationLevel::SnapshotIsolation,
        150,
        seed,
    );
    assert!(out.report.is_clean(), "seed={seed}: {}", out.report);
}
