//! Differential shard-test harness: the key-sharded parallel verifier
//! must be observationally identical to the single-threaded one.
//!
//! Every capture the repo already trusts — the committed golden corpus
//! under `tests/corpus/` plus a seeded chaos sweep of degraded captures —
//! is replayed through the sequential [`Verifier`] and through
//! [`ShardedVerifier`] at 2, 4 and 8 shards, and the verdicts are
//! compared bit-for-bit: same fault list, same deduction statistics,
//! same coverage notes, same counters. The only fields excluded are the
//! peak-footprint/budget gauges, which measure the engine's own memory
//! topology (N shard-local tables instead of one global table) rather
//! than anything about the history under audit.
//!
//! A determinism regression rides along: two identical sharded runs must
//! produce byte-equal outcomes *and* byte-equal checkpoint JSON, pinning
//! the cross-shard certifier's merge order against worker-thread
//! scheduling. Finally a lock-witness cross-check asserts the sharded
//! run acquired its `TrackedMutex`es without any order inversion.

use leopard::testseed::{derive, test_seed};
use leopard_core::{
    lockwitness, CaptureReader, Key, ShardedVerifier, Trace, Value, Verifier, VerifierConfig,
    VerifyOutcome,
};
use leopard_oracle::{
    degrade_capture, generate_clean_capture, CleanRunSpec, DegradeSpec, Schedule, LEVELS,
};
use std::fs::File;
use std::path::PathBuf;

const SHARD_COUNTS: &[usize] = &[2, 4, 8];

/// The comparable projection of a verdict: everything except the
/// peak-footprint/budget gauges (see module docs).
fn comparable(o: &VerifyOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}",
        o.report, o.stats, o.counters.traces, o.counters.committed, o.counters.aborted, o.coverage
    )
}

fn run_sequential(preload: &[(Key, Value)], traces: &[Trace], cfg: VerifierConfig) -> String {
    let mut v = Verifier::new(cfg);
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    comparable(&v.finish())
}

fn run_sharded(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
    n: usize,
) -> String {
    let mut v = ShardedVerifier::new(cfg, n);
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    comparable(&v.finish())
}

/// Asserts shard-count invariance of one capture under one config.
fn assert_invariant(what: &str, preload: &[(Key, Value)], traces: &[Trace], cfg: VerifierConfig) {
    let expected = run_sequential(preload, traces, cfg);
    for &n in SHARD_COUNTS {
        let got = run_sharded(preload, traces, cfg, n);
        assert_eq!(expected, got, "{what}: {n}-shard verdict diverged");
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed golden-corpus capture, at every isolation level,
/// verifies to the same verdict regardless of shard count.
#[test]
fn golden_corpus_is_shard_count_invariant() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("jsonl")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no corpus captures found");

    for path in &files {
        let name = path.file_name().expect("file name").to_string_lossy();
        let reader =
            CaptureReader::new(File::open(path).expect("open capture")).expect("capture header");
        let preload = reader.header().preload.clone();
        let traces: Vec<Trace> = reader
            .map(|t| t.expect("well-formed corpus trace"))
            .collect();
        for level in LEVELS {
            assert_invariant(
                &format!("{name} @ {level:?}"),
                &preload,
                &traces,
                VerifierConfig::for_level(level),
            );
        }
    }
}

/// Seeded chaos sweep: degraded captures (dropped deliveries, crashed
/// clients) keep shard-count invariance in degraded mode, where the
/// demotion and quarantine paths are live.
#[test]
fn chaos_sweep_is_shard_count_invariant() {
    let base = test_seed(0xD1FF);
    for case in 0..6u64 {
        let seed = derive(base, case);
        let level = LEVELS[(case % 4) as usize];
        let spec = CleanRunSpec {
            workload: "blindw-rw".to_string(),
            rows: 16,
            clients: 3,
            txns_per_client: 8,
            level,
            seed,
            tick: 10,
            schedule: Schedule::Interleaved,
        };
        let clean = generate_clean_capture(&spec).expect("clean capture");
        let degraded = degrade_capture(&clean, &DegradeSpec::moderate(seed));
        let mut cfg = VerifierConfig::for_level(level);
        assert_invariant(
            &format!("clean seed {seed:#x} @ {level:?}"),
            &clean.header.preload,
            &clean.traces,
            cfg,
        );
        cfg.degraded = true;
        assert_invariant(
            &format!("degraded seed {seed:#x} @ {level:?}"),
            &degraded.header.preload,
            &degraded.traces,
            cfg,
        );
    }
}

/// Determinism regression: with worker threads free to interleave
/// however the scheduler likes, two identical sharded runs must still
/// produce byte-equal verdicts and byte-equal checkpoint JSON. This is
/// what makes `--json` output and checkpoint files reproducible.
#[test]
fn sharded_runs_are_deterministic_across_schedules() {
    let seed = test_seed(0x5EED);
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 24,
        clients: 4,
        txns_per_client: 10,
        level: leopard_core::IsolationLevel::Serializable,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);

    let run = |n: usize| {
        let mut v = ShardedVerifier::new(cfg, n);
        for &(k, val) in &cap.header.preload {
            v.preload(k, val);
        }
        let mid = cap.traces.len() / 2;
        for t in &cap.traces[..mid] {
            v.process(t);
        }
        let ckpt_json = v.checkpoint().to_json();
        for t in &cap.traces[mid..] {
            v.process(t);
        }
        (ckpt_json, format!("{:?}", v.finish()))
    };
    for &n in SHARD_COUNTS {
        let (ckpt_a, out_a) = run(n);
        let (ckpt_b, out_b) = run(n);
        assert_eq!(
            ckpt_a, ckpt_b,
            "mid-stream checkpoint JSON diverged between identical {n}-shard runs (seed {seed:#x})"
        );
        assert_eq!(
            out_a, out_b,
            "outcome diverged between identical {n}-shard runs (seed {seed:#x})"
        );
    }
}

/// Lock-witness cross-check: a multi-shard run exercises every shard
/// lock; afterwards the runtime witness must have recorded no lock-order
/// violation, and the observed edges must stay acyclic.
#[test]
fn sharded_run_records_no_lock_order_violations() {
    let seed = test_seed(0xA11);
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 32,
        clients: 4,
        txns_per_client: 12,
        level: leopard_core::IsolationLevel::Serializable,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);
    let mut v = ShardedVerifier::new(cfg, 8);
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    v.force_gc();
    let _ = v.finish();
    let violations = lockwitness::order_violations();
    assert!(
        violations.is_empty(),
        "sharded run produced lock-order violations: {violations:?}"
    );
}
