//! Property tests of the spill tier's on-disk record format.
//!
//! The segment page format is the layer every spilled verdict-critical
//! record crosses twice, so its guarantees are pinned as properties over
//! randomized payloads rather than a handful of examples:
//!
//! * **round-trip** — any payload chunked across any number of pages
//!   decodes back byte-identical;
//! * **CRC rejection** — flipping any single byte of an encoded page
//!   makes `decode_page` fail (never silently returns damaged bytes);
//! * **torn-tail truncation** — a crash that leaves a partial page at
//!   the tail of the newest segment is healed on the next open: intact
//!   records still read, the torn record is gone, appends continue;
//! * **byte-dribbled reads** — an I/O layer that returns one byte per
//!   `read_at` call (legal, exactly like `pread`) never corrupts or
//!   truncates a record read.

use leopard_core::store::io::{FsIo, StoreFile, StoreIo};
use leopard_core::store::page::{
    chunk_payload, decode_page, encode_page, PageHeader, PAGE_PAYLOAD, PAGE_SIZE,
};
use leopard_core::store::segment::SegmentWriter;
use proptest::prelude::*;
use std::io;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("leopard-spill-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudo-random payload of `len` bytes.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xff) as u8
        })
        .collect()
}

proptest! {
    #[test]
    fn page_round_trips_any_payload(seed in 0u64..1 << 32, len in 0usize..=PAGE_PAYLOAD) {
        let data = payload(seed, len);
        let hdr = PageHeader {
            record_seq: seed,
            part: 0,
            parts: 1,
            len: len as u32,
        };
        let page = encode_page(&hdr, &data);
        prop_assert_eq!(page.len(), PAGE_SIZE);
        let (got_hdr, got) = decode_page(&page).expect("clean page decodes");
        prop_assert_eq!(got_hdr, hdr);
        prop_assert_eq!(got, &data[..]);
    }

    #[test]
    fn any_single_byte_flip_is_rejected(seed in 0u64..1 << 32, flip in 0usize..PAGE_SIZE) {
        let data = payload(seed, PAGE_PAYLOAD.min(977));
        let hdr = PageHeader {
            record_seq: seed,
            part: 0,
            parts: 1,
            len: data.len() as u32,
        };
        let mut page = encode_page(&hdr, &data);
        page[flip] ^= 0x5a;
        prop_assert!(
            decode_page(&page).is_err(),
            "damaged byte {flip} must not decode"
        );
    }

    #[test]
    fn truncated_page_is_rejected(cut in 0usize..PAGE_SIZE) {
        let data = payload(7, 100);
        let hdr = PageHeader { record_seq: 7, part: 0, parts: 1, len: 100 };
        let page = encode_page(&hdr, &data);
        prop_assert!(decode_page(&page[..cut]).is_err());
    }

    #[test]
    fn chunking_loses_no_bytes(seed in 0u64..1 << 32, len in 0usize..3 * PAGE_PAYLOAD + 17) {
        let data = payload(seed, len);
        let chunks = chunk_payload(&data);
        prop_assert!(!chunks.is_empty(), "even empty payloads occupy a page");
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, data.len());
        let rejoined: Vec<u8> = chunks.concat();
        prop_assert_eq!(rejoined, data);
    }

    #[test]
    fn segment_round_trips_multi_page_records(
        seed in 0u64..1 << 20,
        lens in prop::collection::vec(0usize..2 * PAGE_PAYLOAD + 9, 1..6),
    ) {
        let dir = tmp_dir(&format!("rt-{seed}-{}", lens.len()));
        let io = FsIo;
        let mut w = SegmentWriter::open(&io, &dir).expect("open segment dir");
        let records: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| payload(seed.wrapping_add(i as u64), len))
            .collect();
        let addrs: Vec<_> = records
            .iter()
            .map(|r| w.append(&io, r).expect("append"))
            .collect();
        w.sync().expect("sync");
        for (rec, addr) in records.iter().zip(&addrs) {
            let got = w.read_record(&io, addr).expect("read back");
            prop_assert_eq!(&got, rec);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_healed_on_reopen(seed in 0u64..1 << 20, torn_bytes in 1usize..PAGE_SIZE) {
        let dir = tmp_dir(&format!("torn-{seed}-{torn_bytes}"));
        let io = FsIo;
        let (intact, addr_intact) = {
            let mut w = SegmentWriter::open(&io, &dir).expect("open");
            let intact = payload(seed, 2000);
            let addr = w.append(&io, &intact).expect("append intact");
            w.append(&io, &payload(seed ^ 1, 500)).expect("append doomed");
            w.sync().expect("sync");
            (intact, addr)
        };
        // Crash simulation: rip `torn_bytes` off the tail, leaving a
        // partial final page (the doomed record, or its padding).
        let seg = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").path())
            .find(|p| p.extension().and_then(|x| x.to_str()) == Some("lps"))
            .expect("segment file");
        let len = std::fs::metadata(&seg).expect("meta").len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(len - torn_bytes as u64).expect("tear tail");
        drop(f);

        let mut w = SegmentWriter::open(&io, &dir).expect("reopen heals torn tail");
        let got = w.read_record(&io, &addr_intact).expect("intact record survives");
        prop_assert_eq!(got, intact);
        // The writer keeps accepting appends after recovery.
        let fresh = payload(seed ^ 2, 900);
        let addr = w.append(&io, &fresh).expect("append after heal");
        prop_assert_eq!(w.read_record(&io, &addr).expect("read fresh"), fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dribbled_reads_return_exact_records(
        seed in 0u64..1 << 20,
        chunk in 1usize..7,
    ) {
        let dir = tmp_dir(&format!("dribble-{seed}-{chunk}"));
        let io = DribbleIo { inner: FsIo, chunk };
        let mut w = SegmentWriter::open(&io, &dir).expect("open");
        let rec = payload(seed, PAGE_PAYLOAD + 321);
        let addr = w.append(&io, &rec).expect("append");
        let got = w.read_record(&io, &addr).expect("read through dribble");
        prop_assert_eq!(got, rec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// An I/O layer whose reads return at most `chunk` bytes per call —
/// legal `pread` behaviour that exposes any missing read-retry loop.
#[derive(Debug)]
struct DribbleIo {
    inner: FsIo,
    chunk: usize,
}

#[derive(Debug)]
struct DribbleFile {
    inner: Box<dyn StoreFile>,
    chunk: usize,
}

impl StoreFile for DribbleFile {
    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.inner.read_at(off, &mut buf[..n])
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> io::Result<usize> {
        self.inner.write_at(off, data)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl StoreIo for DribbleIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        Ok(Box::new(DribbleFile {
            inner: self.inner.open(path)?,
            chunk: self.chunk,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.inner.write_atomic(path, data)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(path)
    }
}
