//! The paper's worked examples (Figs. 3, 7, 8, 9) as end-to-end verifier
//! tests, plus the behavioural effect of each ablation DESIGN.md lists.

use leopard::{IsolationLevel, Mechanism, PipelineConfig, TraceBuilder, Verifier, VerifierConfig};
use leopard_core::{Key, Trace, Value};

fn verify(cfg: VerifierConfig, preload: &[(u64, u64)], traces: &[Trace]) -> leopard::VerifyOutcome {
    let mut v = Verifier::new(cfg);
    for &(k, val) in preload {
        v.preload(Key(k), Value(val));
    }
    for t in traces {
        v.process(t);
    }
    v.finish()
}

fn sr() -> VerifierConfig {
    VerifierConfig::for_level(IsolationLevel::Serializable)
}

/// Fig. 3(a): non-overlapping conflicting writes — the ww dependency is
/// directly readable from the trace.
#[test]
fn fig3a_disjoint_writes_are_certain() {
    let mut b = TraceBuilder::new();
    b.write(10, 12, 0, 1, vec![(1, 5)]);
    b.commit(13, 15, 0, 1);
    b.write(20, 22, 1, 2, vec![(1, 6)]);
    b.commit(23, 25, 1, 2);
    let out = verify(sr(), &[(1, 0)], &b.build_sorted());
    assert!(out.report.is_clean());
    assert_eq!(out.stats.ww.certain, 1);
    assert_eq!(out.stats.ww.overlapping(), 0);
}

/// Fig. 7(a): both lock orders are incompatible — an ME violation.
#[test]
fn fig7a_incompatible_lock_orders() {
    // t0 acquires (0,10), releases (11,20); t1 acquires (1,9),
    // releases (12,21): each acquire certainly precedes both releases.
    let mut b = TraceBuilder::new();
    b.write(0, 10, 0, 1, vec![(1, 5)]);
    b.write(1, 9, 1, 2, vec![(1, 6)]);
    b.commit(11, 20, 0, 1);
    b.commit(12, 21, 1, 2);
    let out = verify(sr(), &[(1, 0)], &b.build_sorted());
    assert!(out.report.count(Mechanism::MutualExclusion) >= 1);
}

/// Fig. 7(b): overlapped lock intervals where exactly one serialization
/// is feasible — a ww dependency is deduced, no violation.
#[test]
fn fig7b_single_feasible_lock_order() {
    let mut b = TraceBuilder::new();
    b.write(0, 6, 0, 1, vec![(1, 5)]); // acquire (0,6)
    b.write(5, 12, 1, 2, vec![(1, 6)]); // acquire (5,12): overlaps
    b.commit(7, 8, 0, 1); // release (7,8)
    b.commit(13, 15, 1, 2); // release (13,15)
    let out = verify(sr(), &[(1, 0)], &b.build_sorted());
    assert!(out.report.is_clean(), "{}", out.report);
    assert_eq!(out.stats.ww.deduced, 1, "order deduced from lock exclusion");
}

/// Fig. 8(a): both orders of two committed updates imply concurrent
/// versions — a lost update the FUW mechanism must have prevented.
#[test]
fn fig8a_fuw_violation() {
    // Snapshot of each txn certainly precedes the other's commit.
    let mut cfg = VerifierConfig::for_level(IsolationLevel::SnapshotIsolation);
    cfg.mechanisms.mutual_exclusion = false; // isolate the FUW signal
    let mut b = TraceBuilder::new();
    b.read(0, 2, 0, 1, vec![(1, 0)]); // snapshot t1 (0,2)
    b.read(1, 3, 1, 2, vec![(1, 0)]); // snapshot t2 (1,3)
    b.write(10, 12, 0, 1, vec![(1, 5)]);
    b.write(11, 13, 1, 2, vec![(1, 6)]);
    b.commit(20, 22, 0, 1);
    b.commit(21, 23, 1, 2);
    let out = verify(cfg, &[(1, 0)], &b.build_sorted());
    assert!(out.report.count(Mechanism::FirstUpdaterWins) >= 1);
}

/// Fig. 8(b): overlapped intervals with exactly one feasible serial
/// order — a ww dependency is deduced instead.
#[test]
fn fig8b_fuw_deduces_order() {
    let mut cfg = VerifierConfig::for_level(IsolationLevel::SnapshotIsolation);
    cfg.mechanisms.mutual_exclusion = false;
    let mut b = TraceBuilder::new();
    // t1's whole span certainly precedes t2's snapshot... but overlapping
    // install intervals force the FUW span resolution to decide.
    b.write(10, 30, 0, 1, vec![(1, 5)]); // snapshot + install t1 (10,30)
    b.commit(31, 35, 0, 1);
    b.write(25, 50, 1, 2, vec![(1, 6)]); // t2 overlaps t1's install
    b.commit(51, 55, 1, 2);
    let out = verify(cfg, &[(1, 0)], &b.build_sorted());
    assert!(out.report.is_clean(), "{}", out.report);
    assert_eq!(out.stats.ww.deduced, 1);
}

/// Fig. 9: an rw antidependency is derived from a wr match plus the ww
/// version order — the reader antidepends on the overwriting transaction.
#[test]
fn fig9_rw_derivation() {
    let mut b = TraceBuilder::new();
    b.write(10, 12, 0, 1, vec![(1, 5)]);
    b.commit(13, 15, 0, 1);
    b.read(20, 22, 1, 2, vec![(1, 5)]); // t2 reads t1's version
    b.commit(23, 25, 1, 2);
    b.write(30, 32, 2, 3, vec![(1, 7)]); // t3 overwrites it
    b.commit(33, 35, 2, 3);
    let out = verify(sr(), &[(1, 0)], &b.build_sorted());
    assert!(out.report.is_clean());
    assert_eq!(out.stats.rw.certain, 1, "rw(t2→t3) derived from wr+ww");
}

/// Ablation: with cross-mechanism dependency transfer off, no rw edges
/// exist, so the SSI certifier cannot see write skew.
#[test]
fn ablation_dep_transfer_off_misses_write_skew() {
    let skew = || {
        let mut b = TraceBuilder::new();
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(2, 0)]);
        b.write(10, 12, 0, 1, vec![(2, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        b.build_sorted()
    };
    let with = verify(sr(), &[(1, 0), (2, 0)], &skew());
    assert!(with.report.count(Mechanism::SerializationCertifier) > 0);

    let mut cfg = sr();
    cfg.dep_transfer = false;
    let without = verify(cfg, &[(1, 0), (2, 0)], &skew());
    assert_eq!(
        without.report.count(Mechanism::SerializationCertifier),
        0,
        "without rw derivation the dangerous structure is invisible"
    );
}

/// Ablation: the non-minimal candidate set admits garbage versions, so a
/// stale read goes undetected (Theorem 2's strictness in action).
#[test]
fn ablation_candidate_set_minimality_matters() {
    let stale = || {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 9)]);
        b.commit(13, 15, 0, 1);
        b.read(100, 102, 1, 2, vec![(1, 0)]); // reads overwritten initial
        b.commit(103, 105, 1, 2);
        b.build_sorted()
    };
    let strict = verify(sr(), &[(1, 0)], &stale());
    assert_eq!(strict.report.count(Mechanism::ConsistentRead), 1);

    let mut cfg = sr();
    cfg.minimal_candidate_set = false;
    let loose = verify(cfg, &[(1, 0)], &stale());
    assert_eq!(loose.report.count(Mechanism::ConsistentRead), 0);
}

/// Ablation: garbage collection does not change any verdict, only memory.
#[test]
fn ablation_gc_does_not_change_verdicts() {
    use leopard_db::{Database, DbConfig};
    use leopard_workloads::{preload_database, run_collect, RunLimit, SmallBank, WorkloadGen};
    let g = SmallBank::new(64);
    let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
    let preload = preload_database(&db, &g);
    let gens: Vec<Box<dyn WorkloadGen>> = (0..4).map(|_| Box::new(g.clone()) as _).collect();
    let run = run_collect(&db, gens, RunLimit::Txns(300), 17);
    let traces = run.merged_sorted();
    let pl: Vec<(u64, u64)> = preload.iter().map(|&(k, v)| (k.0, v.0)).collect();

    let mut cfg_gc = sr();
    cfg_gc.gc_every = 64;
    let with_gc = verify(cfg_gc, &pl, &traces);
    let mut cfg_nogc = sr();
    cfg_nogc.gc = false;
    let without_gc = verify(cfg_nogc, &pl, &traces);
    assert_eq!(
        with_gc.report.violations, without_gc.report.violations,
        "GC must be invisible to verdicts"
    );
    assert_eq!(with_gc.counters.committed, without_gc.counters.committed);
}

/// Fig. 5's pipeline walk-through: two clients with interleaved odd/even
/// timestamps dispatch in global order, round by round.
#[test]
fn fig5_pipeline_rounds() {
    use leopard::TwoLevelPipeline;
    use leopard_core::{ClientId, Interval, OpKind, Timestamp, TxnId};
    let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
    let t = |c: u32, ts: u64| {
        Trace::new(
            Interval::new(Timestamp(ts), Timestamp(ts + 1)),
            ClientId(c),
            TxnId(ts),
            OpKind::Commit,
        )
    };
    // Round 1 pushes {1,3,5,7} to client 0's buffer and {2,4,6,8} to 1's.
    for ts in [1u64, 3, 5, 7] {
        p.push(0, t(0, ts)).unwrap();
    }
    for ts in [2u64, 4, 6, 8] {
        p.push(1, t(1, ts)).unwrap();
    }
    let mut out = Vec::new();
    p.drain_available(&mut out);
    // Everything up to the watermark (min of open clients' last-seen) may
    // dispatch; with both clients still open, 7 and 8 wait.
    let dispatched: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
    assert_eq!(dispatched, vec![1, 2, 3, 4, 5, 6, 7]);
    // Round 2: the clients push more, raising the watermark.
    for ts in [9u64, 11] {
        p.push(0, t(0, ts)).unwrap();
    }
    for ts in [10u64, 12] {
        p.push(1, t(1, ts)).unwrap();
    }
    out.clear();
    p.drain_available(&mut out);
    let dispatched: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
    assert_eq!(dispatched, vec![8, 9, 10, 11]);
    p.close(0).unwrap();
    p.close(1).unwrap();
    out.clear();
    p.drain_available(&mut out);
    assert_eq!(out.len(), 1); // the final 12
    assert!(p.is_exhausted());
}
