//! Bounded-memory soak: a clean history many times larger than the
//! memory budget must verify with a high-water mark at or below the
//! budget and the *same verdict* as the unbounded run — GC enforcement
//! may never change what the verifier concludes, only what it retains.
//!
//! The `#[ignore]`d companion drives an adversarial overload (a silent
//! laggard pinning the watermark while another client floods open
//! transactions) through the online chain under a tiny budget: the run
//! must end in an explicit degraded-coverage verdict — shed and evicted
//! work accounted for — instead of growing without bound or panicking.
//! CI runs it with `-- --ignored` under a hard `ulimit -v` ceiling.

use leopard_core::{
    Backpressure, ClientId, IsolationLevel, Key, MemBudget, OnlineLeopard, OnlineOptions, OpKind,
    Trace, TxnId, Value, Verifier, VerifierConfig, VerifyOutcome, TRACE_APPROX_BYTES,
};
use leopard_oracle::{generate_clean_capture, CleanRunSpec, Schedule};

/// Budget for the clean soak, in bytes. Small enough that the history is
/// well over an order of magnitude larger, large enough to hold the
/// irreducible in-flight working set (open transactions + one pivot
/// version per key).
const BUDGET: u64 = 64 * 1024;

/// A deterministic clean history (logical clock, seeded interleaving),
/// so the high-water mark is reproducible run to run — a real threaded
/// run can transiently pin the GC watermark for an unbounded stretch
/// whenever the scheduler parks a client mid-transaction.
fn collect_clean_history() -> (Vec<(Key, Value)>, Vec<Trace>) {
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 64,
        clients: 4,
        txns_per_client: 3_000,
        level: IsolationLevel::Serializable,
        seed: 23,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    (cap.header.preload, cap.traces)
}

fn verify_history(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
) -> VerifyOutcome {
    let mut v = Verifier::new(cfg);
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    v.finish()
}

#[test]
fn clean_history_ten_times_the_budget_stays_under_it() {
    let (preload, traces) = collect_clean_history();
    let history_bytes = traces.len() as u64 * TRACE_APPROX_BYTES as u64;
    assert!(
        history_bytes >= 10 * BUDGET,
        "soak premise broken: history is only {history_bytes} bytes, \
         wanted >= {}",
        10 * BUDGET
    );

    let mut bounded_cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
    bounded_cfg.mem_budget = MemBudget::bytes(BUDGET);
    let bounded = verify_history(&preload, &traces, bounded_cfg);

    let unbounded = verify_history(
        &preload,
        &traces,
        VerifierConfig::for_level(IsolationLevel::Serializable),
    );

    let peak = bounded.counters.budget.peak_bytes;
    assert!(
        peak <= BUDGET,
        "high-water mark {peak} bytes exceeds the {BUDGET}-byte budget \
         on a {history_bytes}-byte history"
    );
    assert!(peak > 0, "the high-water mark must actually be observed");
    assert!(
        bounded.counters.budget.forced_gcs > 0,
        "a history 10x the budget must trip enforcement at least once"
    );

    // Enforcement must be invisible in the verdict.
    assert_eq!(
        bounded.report.is_clean(),
        unbounded.report.is_clean(),
        "budget enforcement changed the verdict: {}",
        bounded.report
    );
    assert_eq!(
        bounded.report.violations.len(),
        unbounded.report.violations.len()
    );
    assert!(bounded.report.is_clean(), "{}", bounded.report);
    assert_eq!(bounded.counters.committed, unbounded.counters.committed);
    assert!(
        bounded.coverage.is_complete(),
        "a clean in-budget run must not degrade coverage: {}",
        bounded.coverage
    );

    // Sanity: without GC even a short prefix of the same history dwarfs
    // the budget, so the flat HWM above is the governor's doing, not the
    // workload's. (A prefix keeps the ungoverned pass cheap.)
    let mut nogc_cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
    nogc_cfg.gc = false;
    let nogc = verify_history(&preload, &traces[..traces.len() / 4], nogc_cfg);
    assert!(
        nogc.counters.budget.peak_bytes > 2 * BUDGET,
        "ungoverned peak {} should dwarf the budget",
        nogc.counters.budget.peak_bytes
    );
}

/// Adversarial overload: run with `-- --ignored` (CI pins `ulimit -v` on
/// top). A silent laggard plus an open-transaction flood can exhaust any
/// fixed budget; the ladder must shed/evict into an explicit degraded
/// verdict rather than grow or panic.
#[test]
#[ignore = "soak: run explicitly (CI bounded-memory job)"]
fn adversarial_overload_ends_in_explicit_degraded_verdict() {
    let mut cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
    cfg.degraded = true;
    cfg.mem_budget = MemBudget::bytes(64 * 1024);
    let opts = OnlineOptions {
        backpressure: Backpressure::Blocking(64),
        ..OnlineOptions::default()
    };
    let (leopard, mut handles) = OnlineLeopard::start_opts(2, cfg, opts, vec![(Key(1), Value(0))]);

    // Client 1 never says anything and never closes: with no eviction
    // timeout configured, only the budget ladder can remove it.
    let laggard = handles.remove(1);
    let alive = handles.remove(0);
    // Client 0 floods open transactions — state GC cannot reclaim.
    for i in 0..20_000u64 {
        let lo = 10 + 2 * i;
        alive.record(Trace::new(
            leopard_core::Interval::new(
                leopard_core::Timestamp(lo),
                leopard_core::Timestamp(lo + 1),
            ),
            ClientId(0),
            TxnId(i + 1),
            OpKind::Write(vec![(Key(1), Value(i))]),
        ));
    }
    let fin = 2 * 20_000 + 100;
    alive.record(Trace::new(
        leopard_core::Interval::new(
            leopard_core::Timestamp(fin),
            leopard_core::Timestamp(fin + 1),
        ),
        ClientId(0),
        TxnId(20_001),
        OpKind::Write(vec![(Key(1), Value(7))]),
    ));
    alive.record(Trace::new(
        leopard_core::Interval::new(
            leopard_core::Timestamp(fin + 2),
            leopard_core::Timestamp(fin + 3),
        ),
        ClientId(0),
        TxnId(20_001),
        OpKind::Commit,
    ));
    drop(alive);

    let (outcome, pstats) = leopard
        .finish_with_timeout(std::time::Duration::from_secs(60))
        .expect("the ladder must terminate the chain, not hang");
    // The laggard was sacrificed and the verdict says so explicitly.
    assert!(
        outcome.counters.budget.budget_evictions >= 1,
        "overload must evict: {:?}",
        outcome.counters.budget
    );
    assert!(
        !outcome.coverage.is_complete(),
        "an overload eviction must degrade coverage: {}",
        outcome.coverage
    );
    assert!(
        outcome.coverage.evicted_clients.contains(&ClientId(1)),
        "{}",
        outcome.coverage
    );
    assert!(
        outcome.counters.budget.forced_dispatches >= 1 || pstats.forced_dispatches >= 1,
        "rung 2 must have fired before the eviction"
    );
    // Never a violation: shedding is a coverage hole, not an anomaly.
    assert!(outcome.report.is_clean(), "{}", outcome.report);
    drop(laggard);
}
