//! Differential spill harness: paging cold state to disk must be
//! observationally invisible.
//!
//! Every golden-corpus capture, at every isolation level, is verified
//! three ways — fully in memory with no budget, under a starvation-level
//! [`MemBudget`] with a spill tier attached (single-threaded), and the
//! same budgeted+spilling configuration key-sharded — and the verdicts
//! are compared field-for-field: same fault list, same deduction
//! statistics, same counters, same coverage. The only fields excluded
//! are the budget/footprint gauges, which measure the engine's memory
//! topology rather than anything about the history under audit.
//!
//! Riding along: a mid-stream chained-checkpoint + resume round-trip
//! over a live spill tier, and a hostile-disk run (seeded short writes,
//! transparently retried at the residual offset) — both must land on the
//! byte-identical verdict. Together these pin the tentpole acceptance
//! criterion: spilling buys memory headroom with zero coverage loss and
//! zero verdict drift.

use leopard::testseed::test_seed;
use leopard_core::store::io::FaultSpec;
use leopard_core::{
    CaptureReader, Checkpoint, Key, MemBudget, ShardedVerifier, SpillSettings, SpillTier, Trace,
    Value, Verifier, VerifierConfig, VerifyOutcome,
};
use leopard_oracle::{generate_clean_capture, CleanRunSpec, Schedule, LEVELS};
use std::fs::File;
use std::path::PathBuf;

/// The comparable projection of a verdict: everything except the
/// budget/footprint gauges and the deduction-stats gauge. The latter is
/// excluded because a memory budget changes the *forced-GC cadence*, and
/// GC legitimately collects versions before some certain edges get
/// tallied — measurably so with the budget alone and no spill tier
/// attached (`rw.certain` drops while `deduced` and the verdict hold).
/// Stats are a measure of the engine's work, not of the history; the
/// verdict-critical fields (report, counters, coverage) are all in.
fn comparable(o: &VerifyOutcome) -> String {
    format!(
        "{:?}|{}|{}|{}|{:?}",
        o.report, o.counters.traces, o.counters.committed, o.counters.aborted, o.coverage
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("leopard-spill-equiv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_unconstrained(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
) -> VerifyOutcome {
    let mut v = Verifier::new(cfg);
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    v.finish()
}

/// Runs under `budget` with a spill tier in `dir`; asserts the run ended
/// fault-free and cleans the tier up afterwards.
fn run_spilling(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
    budget: u64,
    settings: &SpillSettings,
) -> VerifyOutcome {
    let mut cfg = cfg;
    cfg.mem_budget = MemBudget::bytes(budget);
    let mut v = Verifier::new(cfg);
    v.attach_spill(SpillTier::open(settings).expect("open spill tier"));
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    let out = v.finish();
    assert!(
        out.store_fault.is_none(),
        "healthy-disk spill run latched a store fault: {:?}",
        out.store_fault
    );
    let _ = std::fs::remove_dir_all(&settings.dir);
    out
}

fn run_spilling_sharded(
    preload: &[(Key, Value)],
    traces: &[Trace],
    cfg: VerifierConfig,
    budget: u64,
    settings: &SpillSettings,
    shards: usize,
) -> VerifyOutcome {
    let mut cfg = cfg;
    cfg.mem_budget = MemBudget::bytes(budget);
    let mut s = ShardedVerifier::new(cfg, shards);
    s.attach_spill(settings).expect("attach sharded spill");
    for &(k, val) in preload {
        s.preload(k, val);
    }
    for t in traces {
        s.process(t);
    }
    // Drive the spill rung explicitly: sharded budget governance is
    // epoch-coordinated by the embedding engine, not per-trace.
    s.spill();
    let out = s.finish();
    assert!(
        out.store_fault.is_none(),
        "sharded spill run latched a store fault"
    );
    let _ = std::fs::remove_dir_all(&settings.dir);
    out
}

/// A budget low enough to force the spill rung but high enough that the
/// ladder never needs the coverage-costing rungs below it.
fn starvation_budget(unconstrained_peak: u64) -> u64 {
    (unconstrained_peak / 4).max(4096)
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every committed golden-corpus capture, at every isolation level:
/// unconstrained, budget+spill, and budget+spill+shards all agree, and
/// no spilling run pays any coverage.
#[test]
fn golden_corpus_verdicts_survive_spilling() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("jsonl")).then_some(p)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no corpus captures found");

    let mut total_spilled = 0u64;
    for (fi, path) in files.iter().enumerate() {
        let name = path.file_name().expect("file name").to_string_lossy();
        let reader =
            CaptureReader::new(File::open(path).expect("open capture")).expect("capture header");
        let preload = reader.header().preload.clone();
        let traces: Vec<Trace> = reader
            .map(|t| t.expect("well-formed corpus trace"))
            .collect();
        for (li, level) in LEVELS.iter().enumerate() {
            let cfg = VerifierConfig::for_level(*level);
            let base = run_unconstrained(&preload, &traces, cfg);
            let budget = starvation_budget(base.counters.budget.peak_bytes);
            let expected = comparable(&base);

            let settings = SpillSettings::new(tmp_dir(&format!("c{fi}-{li}")));
            let spilled = run_spilling(&preload, &traces, cfg, budget, &settings);
            assert_eq!(
                expected,
                comparable(&spilled),
                "{name} @ {level:?}: spilling changed the verdict"
            );
            assert!(
                spilled.coverage.is_complete() == base.coverage.is_complete(),
                "{name} @ {level:?}: spilling changed coverage completeness"
            );
            assert_eq!(
                spilled.counters.budget.budget_evictions, 0,
                "{name} @ {level:?}: spill rung must pre-empt eviction"
            );
            total_spilled += spilled.counters.budget.spilled_records;

            let settings = SpillSettings::new(tmp_dir(&format!("s{fi}-{li}")));
            let sharded = run_spilling_sharded(&preload, &traces, cfg, budget, &settings, 2);
            assert_eq!(
                expected,
                comparable(&sharded),
                "{name} @ {level:?}: sharded spilling changed the verdict"
            );
        }
    }
    assert!(
        total_spilled > 0,
        "the starvation budget never forced a spill — the differential is vacuous"
    );
}

/// Mid-stream chained checkpoint + resume over a live spill tier: the
/// resumed run must land on the same verdict as the straight-through
/// run, with the spilled records faulting back in on demand.
#[test]
fn chained_checkpoint_resume_preserves_spilled_state() {
    let seed = test_seed(0x5B11);
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 24,
        clients: 4,
        txns_per_client: 12,
        level: leopard_core::IsolationLevel::Serializable,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);

    let base = run_unconstrained(&cap.header.preload, &cap.traces, cfg);
    let budget = starvation_budget(base.counters.budget.peak_bytes);
    let expected = comparable(&base);

    let dir = tmp_dir("resume");
    let settings = SpillSettings::new(dir.join("tier"));
    let ckpt_path = dir.join("mid.ckpt");
    std::fs::create_dir_all(&dir).expect("mkdir");

    let mut cfg1 = cfg;
    cfg1.mem_budget = MemBudget::bytes(budget);
    let mut v = Verifier::new(cfg1);
    v.attach_spill(SpillTier::open(&settings).expect("open tier"));
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    let mid = cap.traces.len() / 2;
    for t in &cap.traces[..mid] {
        v.process(t);
    }
    v.sync_spill().expect("sync before checkpoint");
    v.checkpoint()
        .write_chained(&ckpt_path)
        .expect("chained write");
    drop(v);

    let (ckpt, warning) = Checkpoint::read_chained(&ckpt_path).expect("chained read");
    assert!(warning.is_none(), "clean chain must not warn: {warning:?}");
    let mut v = Verifier::from_checkpoint(&ckpt).expect("resume");
    v.resume_spill(
        SpillTier::open(&settings).expect("reopen tier"),
        &ckpt.spill,
    );
    for t in &cap.traces[mid..] {
        v.process(t);
    }
    let resumed = v.finish();
    assert!(
        resumed.store_fault.is_none(),
        "resume latched a store fault"
    );
    assert_eq!(
        expected,
        comparable(&resumed),
        "resume over a live spill tier changed the verdict (seed {seed:#x})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hostile-disk differential: seeded short writes force the tier's
/// residual-offset retry loop on, and the verdict must not move.
#[test]
fn short_write_storms_do_not_move_the_verdict() {
    let seed = test_seed(0x5877);
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 16,
        clients: 3,
        txns_per_client: 10,
        level: leopard_core::IsolationLevel::Serializable,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);

    let base = run_unconstrained(&cap.header.preload, &cap.traces, cfg);
    let budget = starvation_budget(base.counters.budget.peak_bytes);

    let mut settings = SpillSettings::new(tmp_dir("shortw"));
    settings.fault = FaultSpec {
        seed,
        short_write_prob: 0.5,
        ..FaultSpec::default()
    };
    let stormy = run_spilling(&cap.header.preload, &cap.traces, cfg, budget, &settings);
    assert_eq!(
        comparable(&base),
        comparable(&stormy),
        "short-write storm changed the verdict (seed {seed:#x})"
    );
}
