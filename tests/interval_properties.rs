//! Property tests for the interval algebra and the two-level pipeline
//! watermark: overlap symmetry, containment transitivity, and watermark
//! monotonicity under proptest-generated interval streams.
//!
//! Seeding is fixed through `leopard::testseed` and every assertion
//! echoes the effective seed and case index, so a failure reproduces with
//! `LEOPARD_TEST_SEED=<seed> cargo test --test interval_properties`.

use leopard::testseed::{derive, test_seed};
use leopard::{PipelineConfig, TwoLevelPipeline};
use leopard_core::{ClientId, Interval, OpKind, Timestamp, Trace, TxnId};
use proptest::prelude::*;
use proptest::SampleRng;

/// Cases per property; each case gets its own derived sub-seed.
const CASES: u64 = 256;

fn iv(lo: u64, hi: u64) -> Interval {
    Interval::new(Timestamp(lo), Timestamp(hi))
}

/// Strategy: an arbitrary (possibly degenerate) interval.
fn interval() -> impl Strategy<Value = Interval> {
    (0u64..10_000, 0u64..200).prop_map(|(lo, w)| iv(lo, lo + w))
}

/// Strategy: a nested triple `a ⊇ b ⊇ c` built by widening `c` twice.
fn nested_triple() -> impl Strategy<Value = (Interval, Interval, Interval)> {
    (
        0u64..10_000,
        0u64..100,
        0u64..50,
        0u64..50,
        0u64..50,
        0u64..50,
    )
        .prop_map(|(lo, w, gl1, gr1, gl2, gr2)| {
            let c = iv(lo + gl1 + gl2, lo + gl1 + gl2 + w);
            let b = iv(lo + gl1, lo + gl1 + gl2 + w + gr2);
            let a = iv(lo, lo + gl1 + gl2 + w + gr2 + gr1);
            (a, b, c)
        })
}

/// Strategy: per-client streams of `(ts_bef gap, width)` pairs — the raw
/// material for program-order-respecting trace streams.
fn stream_set() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(prop::collection::vec((0u64..500, 1u64..50), 0..40), 1..6)
}

#[test]
fn overlap_is_symmetric_and_excludes_decided_order() {
    let seed = test_seed(0x0BE7_A11E);
    for case in 0..CASES {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let a = interval().sample_with(&mut rng);
        let b = interval().sample_with(&mut rng);
        assert_eq!(
            a.overlaps(&b),
            b.overlaps(&a),
            "overlap not symmetric for a={a} b={b} (seed={seed} case={case})"
        );
        if a.overlaps(&b) {
            assert!(
                !a.certainly_before(&b) && !b.certainly_before(&a),
                "overlapping pair a={a} b={b} has a decided order (seed={seed} case={case})"
            );
        }
    }
}

#[test]
fn containment_is_reflexive_transitive_and_matches_hull() {
    let seed = test_seed(0xC0_17A1);
    for case in 0..CASES {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let (a, b, c) = nested_triple().sample_with(&mut rng);
        assert!(
            a.contains(&a) && b.contains(&b) && c.contains(&c),
            "containment not reflexive (seed={seed} case={case})"
        );
        assert!(
            a.contains(&b) && b.contains(&c),
            "constructed nest broken: a={a} b={b} c={c} (seed={seed} case={case})"
        );
        assert!(
            a.contains(&c),
            "containment not transitive: a={a} b={b} c={c} (seed={seed} case={case})"
        );

        // On arbitrary pairs, containment and hull-absorption coincide:
        // a ⊇ x  ⟺  hull(a, x) = a.
        let x = interval().sample_with(&mut rng);
        assert_eq!(
            a.contains(&x),
            a.hull(&x) == a,
            "containment/hull disagree for a={a} x={x} (seed={seed} case={case})"
        );
    }
}

#[test]
fn watermark_is_monotone_under_interleaved_streams() {
    let seed = test_seed(0x7EA_F00D);
    for case in 0..CASES / 2 {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let streams = stream_set().sample_with(&mut rng);
        let total: usize = streams.iter().map(Vec::len).sum();

        let mut pipeline = TwoLevelPipeline::new(streams.len(), PipelineConfig::default());
        let mut prev = pipeline.watermark();
        let mut check = |pipeline: &TwoLevelPipeline, when: &str| {
            let cur = pipeline.watermark();
            match (prev, cur) {
                (Some(p), Some(c)) => assert!(
                    c >= p,
                    "watermark regressed {} -> {} {when} (seed={seed} case={case})",
                    p.0,
                    c.0
                ),
                (None, Some(c)) => panic!(
                    "watermark resurrected to {} after exhaustion {when} (seed={seed} case={case})",
                    c.0
                ),
                _ => {}
            }
            prev = cur;
        };

        // Interleave the per-client streams in a seed-driven order,
        // occasionally dispatching, and observe the watermark after every
        // pipeline mutation.
        let mut cursor = vec![0usize; streams.len()];
        let mut ts = vec![0u64; streams.len()];
        let mut pushed = 0usize;
        let mut out = Vec::new();
        while pushed < total {
            let open: Vec<usize> = (0..streams.len())
                .filter(|&c| cursor[c] < streams[c].len())
                .collect();
            let client = open[(rng.next_u64() % open.len() as u64) as usize];
            let (gap, width) = streams[client][cursor[client]];
            cursor[client] += 1;
            ts[client] += gap;
            let trace = Trace::new(
                iv(ts[client], ts[client] + width),
                ClientId(client as u32),
                TxnId(pushed as u64 + 1),
                OpKind::Commit,
            );
            pipeline
                .push(client, trace)
                .expect("per-client monotone push");
            pushed += 1;
            check(&pipeline, "after push");
            if rng.next_u64().is_multiple_of(3) {
                if let Some(t) = pipeline.try_dispatch() {
                    out.push(t);
                }
                check(&pipeline, "after dispatch");
            }
        }
        for client in 0..streams.len() {
            pipeline.close(client).expect("valid client");
            check(&pipeline, "after close");
        }
        pipeline.drain_available(&mut out);
        check(&pipeline, "after drain");
        assert!(
            pipeline.is_exhausted(),
            "traces left behind (seed={seed} case={case})"
        );
        assert_eq!(
            out.len(),
            total,
            "lost/duplicated traces (seed={seed} case={case})"
        );
        assert!(
            out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()),
            "dispatch order broken (seed={seed} case={case})"
        );
    }
}
