//! Soundness smoke test: a correct engine must never be flagged.
//!
//! For every bundled workload, generate 1 000 seeded *interleaved* clean
//! captures (real concurrency: locks, snapshots and the certifier all
//! fire) and verify each at the level the engine actually ran at. Any
//! rejection is a false positive — the one failure mode a verifier must
//! not have (paper §VI-B). Seeds derive from `LEOPARD_TEST_SEED` via
//! `leopard::testseed`, so the whole sweep is re-seedable from one
//! environment variable and every failure message carries the exact spec
//! seed needed to replay the offending capture.

use leopard::testseed::{derive, test_seed};
use leopard_oracle::{
    generate_clean_capture, level_tag, verify_at, CleanRunSpec, Schedule, LEVELS,
};
use leopard_workloads::BUNDLED_WORKLOADS;

/// Captures per bundled workload (cycling through all four levels).
const CAPTURES_PER_WORKLOAD: u64 = 1_000;

#[test]
fn clean_interleaved_captures_never_verify_dirty() {
    let base = test_seed(0x5_00D);
    for (w, name) in BUNDLED_WORKLOADS.iter().enumerate() {
        for i in 0..CAPTURES_PER_WORKLOAD {
            let level = LEVELS[(i % 4) as usize];
            let spec = CleanRunSpec {
                workload: (*name).to_string(),
                rows: 8,
                clients: 2,
                txns_per_client: 2,
                level,
                seed: derive(base, ((w as u64) << 32) | i),
                tick: 50 + i % 97,
                schedule: Schedule::Interleaved,
            };
            let cap = generate_clean_capture(&spec)
                .unwrap_or_else(|e| panic!("generating {name} capture #{i}: {e} (seed={base})"));
            let out = verify_at(&cap, level);
            assert!(
                out.report.is_clean(),
                "false positive: {name} capture #{i} at {} flagged: {} \
                 (base seed={base}, spec seed={})",
                level_tag(level),
                out.report,
                spec.seed
            );
        }
    }
}
