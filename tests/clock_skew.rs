//! Clock-skew robustness: the paper assumes NTP-grade synchronisation
//! (§IV-A); `VerifierConfig::clock_skew_bound` makes the assumption
//! explicit. With per-client clock skew up to ε and the bound set to ≥ ε,
//! a correct engine must still verify clean; violations remain
//! detectable as long as they are coarser than the skew.

use leopard::testseed::{derive, test_seed};
use leopard::{IsolationLevel, Mechanism, Verifier, VerifierConfig};
use leopard_core::{ClientId, Trace};
use leopard_db::{Database, DbConfig, FaultKind, FaultPlan, SimClock, SkewedClock, TracedSession};
use leopard_workloads::{execute_txn, preload_database, SmallBank, UniqueValues, WorkloadGen};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const SKEW_NS: i64 = 40_000; // 40 µs of per-client clock error

/// Runs SmallBank clients whose clocks disagree by up to ±SKEW_NS.
fn skewed_run(db: &Arc<Database>, workload: &SmallBank, clients: usize, seed: u64) -> Vec<Trace> {
    let base = Arc::new(leopard_db::WallClock::new());
    let mut joins = Vec::new();
    for i in 0..clients {
        let db = Arc::clone(db);
        let base = Arc::clone(&base);
        let mut gen = workload.clone();
        let unique = UniqueValues::new();
        // Alternate fast/slow clients across the skew range.
        let skew = if i % 2 == 0 { SKEW_NS } else { -SKEW_NS };
        joins.push(std::thread::spawn(move || {
            let clock = SkewedClock::new(base, skew);
            let mut session =
                TracedSession::new(db.session(), clock, ClientId(i as u32), Vec::new());
            let mut rng = SmallRng::seed_from_u64(derive(seed, i as u64));
            for _ in 0..300 {
                let steps = gen.next_txn(&mut rng);
                let _ = execute_txn(&mut session, &steps, &unique);
            }
            session.into_parts()
        }));
    }
    let mut all: Vec<Trace> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client thread"))
        .collect();
    all.sort_by_key(|t| (t.ts_bef(), t.ts_aft()));
    all
}

fn verify(
    traces: &[Trace],
    preload: &[(leopard::Key, leopard::Value)],
    skew_bound: u64,
) -> leopard::BugReport {
    let mut cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
    cfg.clock_skew_bound = skew_bound;
    let mut v = Verifier::new(cfg);
    for &(k, val) in preload {
        v.preload(k, val);
    }
    for t in traces {
        v.process(t);
    }
    v.finish().report
}

#[test]
fn skew_bound_absorbs_clock_error() {
    let db = Database::new(DbConfig {
        op_latency: Duration::from_micros(10),
        ..DbConfig::at(IsolationLevel::Serializable)
    });
    let seed = test_seed(0x5CE_D01);
    let workload = SmallBank::new(32);
    let preload = preload_database(&db, &workload);
    let traces = skewed_run(&db, &workload, 8, seed);
    // With the bound covering the injected skew (2 × 40 µs between any
    // two clients), a correct engine verifies clean.
    let report = verify(&traces, &preload, 2 * SKEW_NS as u64);
    assert!(report.is_clean(), "seed={seed}: {report}");
}

#[test]
fn coarse_violations_survive_the_widening() {
    // Even with intervals widened by the skew bound, a fault whose
    // time-scale is much coarser than the skew is still detected.
    let seed = test_seed(0x5CE_D02);
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::ReadCommitted),
        FaultPlan::with_probability(FaultKind::StaleSnapshot, 0.05, derive(seed, 100)),
    );
    let workload = SmallBank::new(16);
    let preload = preload_database(&db, &workload);
    let mut clock_sessions = Vec::new();
    // Deterministic 100 µs ticks: the stale-snapshot lag spans several
    // transactions, i.e. milliseconds — far coarser than the 80 µs bound.
    let base = Arc::new(SimClock::new(100_000));
    for i in 0..4u32 {
        let mut session =
            TracedSession::new(db.session(), Arc::clone(&base), ClientId(i), Vec::new());
        let mut gen = workload.clone();
        let unique = UniqueValues::new();
        let mut rng = SmallRng::seed_from_u64(derive(seed, u64::from(i)));
        for _ in 0..200 {
            let steps = gen.next_txn(&mut rng);
            let _ = execute_txn(&mut session, &steps, &unique);
        }
        clock_sessions.extend(session.into_parts());
    }
    clock_sessions.sort_by_key(|t| (t.ts_bef(), t.ts_aft()));
    let mut cfg = VerifierConfig::for_level(IsolationLevel::ReadCommitted);
    cfg.clock_skew_bound = 2 * SKEW_NS as u64;
    let mut v = Verifier::new(cfg);
    for (k, val) in preload {
        v.preload(k, val);
    }
    for t in &clock_sessions {
        v.process(t);
    }
    let report = v.finish().report;
    assert!(
        report.count(Mechanism::ConsistentRead) > 0,
        "stale reads must still surface through the widened intervals (seed={seed})"
    );
}
