//! No false negatives: every mechanism fault injected into the engine is
//! detected by the verifier, at the isolation level that promises the
//! mechanism.

use leopard::testseed::{derive, test_seed};
use leopard::{IsolationLevel, Mechanism, Verifier, VerifierConfig};
use leopard_db::{Database, DbConfig, FaultKind, FaultPlan};
use leopard_workloads::{preload_database, run_collect, RunLimit, SmallBank, WorkloadGen};
use std::time::Duration;

fn run_faulty(
    fault: FaultKind,
    probability: f64,
    level: IsolationLevel,
    seed: u64,
) -> leopard::VerifyOutcome {
    let db = Database::with_faults(
        DbConfig {
            op_latency: Duration::from_micros(20),
            ..DbConfig::at(level)
        },
        FaultPlan::with_probability(fault, probability, derive(seed, 0)),
    );
    let workload = SmallBank::new(32);
    let preload = preload_database(&db, &workload);
    let clients: Vec<Box<dyn WorkloadGen>> =
        (0..8).map(|_| Box::new(workload.clone()) as _).collect();
    let run = run_collect(&db, clients, RunLimit::Txns(800), derive(seed, 1));
    assert!(
        db.faults().fired_count() > 0,
        "fault {fault:?} never fired — the test exercises nothing (seed={seed})"
    );
    let mut verifier = Verifier::new(VerifierConfig::for_level(level));
    for (k, v) in preload {
        verifier.preload(k, v);
    }
    for t in run.merged_sorted() {
        verifier.process(&t);
    }
    verifier.finish()
}

#[test]
fn dirty_reads_are_detected_at_rc() {
    let seed = test_seed(0xFA_0701);
    let out = run_faulty(
        FaultKind::DirtyRead,
        0.02,
        IsolationLevel::ReadCommitted,
        seed,
    );
    assert!(
        out.report.count(Mechanism::ConsistentRead) > 0,
        "seed={seed}"
    );
}

#[test]
fn stale_snapshots_are_detected_at_rc() {
    let seed = test_seed(0xFA_0702);
    let out = run_faulty(
        FaultKind::StaleSnapshot,
        0.02,
        IsolationLevel::ReadCommitted,
        seed,
    );
    assert!(
        out.report.count(Mechanism::ConsistentRead) > 0,
        "seed={seed}"
    );
}

#[test]
fn skipped_locks_are_detected_at_rr() {
    let seed = test_seed(0xFA_0703);
    let out = run_faulty(
        FaultKind::SkipLock,
        0.20,
        IsolationLevel::RepeatableRead,
        seed,
    );
    assert!(
        out.report.count(Mechanism::MutualExclusion) > 0,
        "seed={seed}"
    );
}

#[test]
fn lost_updates_are_detected_at_si() {
    let seed = test_seed(0xFA_0704);
    let out = run_faulty(
        FaultKind::AllowLostUpdate,
        0.05,
        IsolationLevel::SnapshotIsolation,
        seed,
    );
    assert!(
        out.report.count(Mechanism::FirstUpdaterWins) > 0,
        "seed={seed}"
    );
}

#[test]
fn skipped_certifier_is_detected_at_sr() {
    let seed = test_seed(0xFA_0705);
    let out = run_faulty(
        FaultKind::SkipCertifier,
        0.5,
        IsolationLevel::Serializable,
        seed,
    );
    assert!(
        out.report.count(Mechanism::SerializationCertifier) > 0,
        "seed={seed}"
    );
}

#[test]
fn stale_snapshot_is_legal_noise_at_weaker_checks() {
    // The same stale-snapshot engine verified only for ME never triggers
    // an ME violation: faults map to their own mechanism.
    let seed = test_seed(0xFA_0706);
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::ReadCommitted),
        FaultPlan::with_probability(FaultKind::StaleSnapshot, 0.02, derive(seed, 0)),
    );
    let workload = SmallBank::new(32);
    let preload = preload_database(&db, &workload);
    let clients: Vec<Box<dyn WorkloadGen>> =
        (0..4).map(|_| Box::new(workload.clone()) as _).collect();
    let run = run_collect(&db, clients, RunLimit::Txns(300), derive(seed, 1));
    let mut cfg = VerifierConfig::for_level(IsolationLevel::ReadCommitted);
    cfg.mechanisms.consistent_read = None; // CR check off
    let mut verifier = Verifier::new(cfg);
    for (k, v) in preload {
        verifier.preload(k, v);
    }
    for t in run.merged_sorted() {
        verifier.process(&t);
    }
    let out = verifier.finish();
    assert_eq!(
        out.report.count(Mechanism::MutualExclusion),
        0,
        "seed={seed}"
    );
}
