//! Golden-corpus test for the anomaly-injection oracle.
//!
//! Regenerates the entire corpus from the committed seeds
//! (`CleanRunSpec::corpus_default`) and byte-compares every file against
//! `tests/corpus/`, then re-runs the differential verdict matrix and
//! checks each cell. A diff here means either the generator, the
//! injector, the verifier, a baseline, or the preflight analyzer changed
//! behaviour — regenerate with `leopard oracle --out-dir tests/corpus`
//! once the change is understood and intended.

use leopard_oracle::{
    corpus_files, run_matrix, verify_at, AnomalyClass, Capture, CleanRunSpec, Mutation, LEVELS,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_bit_identically_from_committed_seeds() {
    let spec = CleanRunSpec::corpus_default();
    let files = corpus_files(&spec).expect("corpus generation");
    assert_eq!(
        files.len(),
        18,
        "1 base + 9 anomalies + 6 corruptions + matrix + manifest"
    );
    for (name, bytes) in &files {
        let path = corpus_dir().join(name);
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        assert_eq!(
            bytes, &committed,
            "{name} drifted from the committed golden copy; regenerate \
             tests/corpus with `leopard oracle --out-dir tests/corpus` if \
             the change is intended"
        );
    }
}

#[test]
fn no_stray_files_in_committed_corpus() {
    let spec = CleanRunSpec::corpus_default();
    let expected: Vec<String> = corpus_files(&spec)
        .expect("corpus generation")
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            expected.contains(&name),
            "stray file {name} in tests/corpus"
        );
    }
}

#[test]
fn verdict_matrix_has_no_mismatched_cell() {
    let report = run_matrix(&CleanRunSpec::corpus_default()).expect("matrix run");
    assert_eq!(report.rows.len(), 9);
    for row in &report.rows {
        for cell in &row.leopard {
            assert!(
                cell.ok,
                "{} @ {}: expected reject={}, got reject={} (mechanism {} flagged: {})",
                row.anomaly,
                cell.level,
                cell.expected_reject,
                cell.rejected,
                row.mechanism,
                cell.mechanism_flagged
            );
        }
        assert!(row.cobra.ok, "{}: cobra disagrees", row.anomaly);
        assert!(
            row.cycle_search.ok,
            "{}: cycle-search disagrees",
            row.anomaly
        );
        assert_eq!(
            row.preflight_errors, 0,
            "{}: gadget is malformed",
            row.anomaly
        );
    }
    for row in &report.corruptions {
        assert!(row.ok, "{} did not raise {}", row.corruption, row.code);
    }
    assert!(report.all_ok);
}

#[test]
fn committed_matrix_json_says_all_ok() {
    let raw = std::fs::read_to_string(corpus_dir().join("matrix.json")).expect("matrix.json");
    assert!(
        raw.contains("\"all_ok\":true"),
        "committed matrix.json records a mismatch"
    );
    assert!(!raw.contains("\"ok\":false"), "a cell disagrees");
}

#[test]
fn mutated_captures_cover_the_full_lattice() {
    // Independent of the golden bytes: re-verify each freshly injected
    // anomaly capture at every level and cross-check against the class's
    // declared expectation, so the expectation table itself is exercised
    // from outside the oracle crate.
    let spec = CleanRunSpec::corpus_default();
    let base = leopard_oracle::generate_clean_capture(&spec).expect("clean base");
    let mut rejected_cells = 0usize;
    for class in AnomalyClass::ALL {
        let mutated: Capture = Mutation::anomaly(class).apply(&base);
        for (&level, expected_reject) in LEVELS.iter().zip(class.rejected_at()) {
            let outcome = verify_at(&mutated, level);
            assert_eq!(
                !outcome.report.is_clean(),
                expected_reject,
                "{} @ {level}",
                class.name()
            );
            if expected_reject {
                rejected_cells += 1;
                assert!(
                    outcome.report.count(class.mechanism()) > 0,
                    "{} @ {level}: {} not among flagged mechanisms: {}",
                    class.name(),
                    class.mechanism(),
                    outcome.report
                );
            }
        }
    }
    // 3 anomalies × 4 levels + 5 × 3 levels + write-skew × 1 level.
    assert_eq!(rejected_cells, 3 * 4 + 5 * 3 + 1);
}

#[test]
fn chaos_degraded_base_capture_stays_clean_at_every_level() {
    // The dual of the verdict matrix: the corpus base capture is serial,
    // hence clean at every level; after seeded chaos mangling (dropped and
    // duplicated deliveries, killed terminals) it must still verify clean
    // in degraded mode — a damaged-but-correct history is never a
    // violation. Asserted through the same corpus_default spec the golden
    // matrix uses, without touching the MatrixReport serialization.
    use leopard_oracle::{
        check_chaos_soundness, degradation_was_exercised, ChaosSoundnessReport, DegradeSpec,
    };
    let base = leopard_oracle::generate_clean_capture(&CleanRunSpec::corpus_default())
        .expect("clean base");
    let specs: Vec<DegradeSpec> = (0..3).map(DegradeSpec::moderate).collect();
    let mut report = ChaosSoundnessReport::default();
    for &level in &LEVELS {
        check_chaos_soundness(&base, level, &specs, &mut report);
    }
    assert_eq!(report.cells.len(), 12);
    assert!(
        report.is_sound(),
        "false positives: {:?}",
        report.false_positives()
    );
    assert!(degradation_was_exercised(&report));
}
