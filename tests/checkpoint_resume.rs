//! Kill-at-a-random-point / resume property.
//!
//! Checkpointing the verifier after an arbitrary prefix of the stream,
//! serializing the checkpoint to JSON (as `leopard verify --checkpoint`
//! does), restoring it in a fresh process and feeding the remainder must
//! produce a verdict identical to the uninterrupted run — same
//! violations, counters, deduction statistics and coverage. Exercised on
//! clean and chaos-degraded captures at all four levels.

use leopard_core::{Checkpoint, Verifier, VerifierConfig};
use leopard_oracle::{
    degrade_capture, generate_clean_capture, Capture, CleanRunSpec, DegradeSpec, Schedule, LEVELS,
};
use proptest::prelude::*;

fn run_full(cap: &Capture, cfg: VerifierConfig) -> String {
    let mut v = Verifier::new(cfg);
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    format!("{:?}", v.finish())
}

/// Processes `k` traces, images the state, kills the verifier, round-trips
/// the image through JSON, resumes and finishes the stream.
fn run_killed_and_resumed(cap: &Capture, cfg: VerifierConfig, k: usize) -> String {
    let mut v = Verifier::new(cfg);
    for &(key, val) in &cap.header.preload {
        v.preload(key, val);
    }
    for t in &cap.traces[..k] {
        v.process(t);
    }
    let json = v.checkpoint().to_json();
    drop(v); // the original process dies here
    let ckpt = Checkpoint::from_json(&json).expect("checkpoint round-trips");
    let mut v = Verifier::from_checkpoint(&ckpt).expect("resume");
    for t in &cap.traces[k..] {
        v.process(t);
    }
    format!("{:?}", v.finish())
}

proptest! {
    #[test]
    fn kill_and_resume_gives_the_identical_verdict(
        seed in 0u64..1000,
        frac_pm in 0u64..=1000,
        level_i in 0usize..4,
        degraded in any::<bool>(),
    ) {
        let level = LEVELS[level_i];
        let spec = CleanRunSpec {
            workload: "blindw-rw".to_string(),
            rows: 16,
            clients: 3,
            txns_per_client: 6,
            level,
            seed: 5000 + seed,
            tick: 10,
            schedule: Schedule::Interleaved,
        };
        let cap = generate_clean_capture(&spec).expect("clean capture");
        let cap = if degraded {
            degrade_capture(&cap, &DegradeSpec::moderate(seed))
        } else {
            cap
        };
        let mut cfg = VerifierConfig::for_level(level);
        cfg.degraded = degraded;
        let k = (cap.traces.len() * frac_pm as usize) / 1000;
        prop_assert_eq!(run_full(&cap, cfg), run_killed_and_resumed(&cap, cfg, k));
    }
}

#[test]
fn resume_at_every_split_point_of_a_small_capture() {
    // Exhaustive over split points: no "lucky k" can hide a state field
    // missing from the checkpoint image.
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 8,
        clients: 2,
        txns_per_client: 4,
        level: leopard_core::IsolationLevel::Serializable,
        seed: 42,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);
    let full = run_full(&cap, cfg);
    for k in 0..=cap.traces.len() {
        assert_eq!(
            full,
            run_killed_and_resumed(&cap, cfg, k),
            "verdict diverged when killed after {k} traces"
        );
    }
}
