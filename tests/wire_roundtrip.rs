//! Property tests for the `leopard serve` wire protocol: every frame
//! survives an encode→decode round trip (both through `read_frame` and
//! through a byte-dribbled `FrameDecoder`), truncated prefixes and
//! bit-flipped bytes are rejected with typed errors instead of being
//! misparsed, oversized length prefixes are refused before allocation,
//! and varints round-trip at every 7-bit boundary.
//!
//! Seeding is fixed through `leopard::testseed`; a failure reproduces
//! with `LEOPARD_TEST_SEED=<seed> cargo test --test wire_roundtrip`.

use leopard::testseed::{derive, test_seed};
use leopard_core::wire::{put_varint, read_frame, MAX_FRAME_LEN};
use leopard_core::{
    ClientId, Frame, FrameDecoder, Hello, Interval, IsolationLevel, Key, OpKind, RejectReason,
    Timestamp, Trace, TraceFrame, TxnId, Value, WireError, WIRE_VERSION,
};
use proptest::prelude::*;
use proptest::SampleRng;

/// Cases per property; each case gets its own derived sub-seed.
const CASES: u64 = 256;

fn kv_set() -> impl Strategy<Value = Vec<(Key, Value)>> {
    prop::collection::vec(
        (0u64..1 << 48, 0u64..1 << 48).prop_map(|(k, v)| (Key(k), Value(v))),
        0..8,
    )
}

fn string_field() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..128, 0..24).prop_map(|cs| {
        cs.into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
}

fn level_of(i: u8) -> IsolationLevel {
    match i % 4 {
        0 => IsolationLevel::ReadCommitted,
        1 => IsolationLevel::RepeatableRead,
        2 => IsolationLevel::SnapshotIsolation,
        _ => IsolationLevel::Serializable,
    }
}

/// Strategy: an arbitrary trace, including inverted intervals
/// (`ts_aft < ts_bef`, a broken client clock) — the zigzag delta
/// encoding must carry those through unchanged.
fn trace() -> impl Strategy<Value = Trace> {
    (any::<u64>(), 0i64..5_000, any::<u32>(), any::<u64>()).prop_map(|(lo, delta, client, txn)| {
        let hi = lo.wrapping_add_signed(delta - 1_000);
        Trace {
            // Deliberately NOT Interval::new — that would normalise
            // the inverted bounds the wire must preserve verbatim.
            interval: Interval {
                lo: Timestamp(lo),
                hi: Timestamp(hi),
            },
            client: ClientId(client),
            txn: TxnId(txn),
            op: OpKind::Commit, // replaced by the caller
        }
    })
}

fn op_of(kind: u8, set: Vec<(Key, Value)>) -> OpKind {
    match kind % 5 {
        0 => OpKind::Read(set),
        1 => OpKind::LockedRead(set),
        2 => OpKind::Write(set),
        3 => OpKind::Commit,
        _ => OpKind::Abort,
    }
}

fn reason_of(i: u8) -> RejectReason {
    match i % 5 {
        0 => RejectReason::Version,
        1 => RejectReason::Admission,
        2 => RejectReason::Malformed,
        3 => RejectReason::Draining,
        _ => RejectReason::Quarantined,
    }
}

/// Draws one arbitrary frame of any variant.
fn arbitrary_frame(rng: &mut SampleRng) -> Frame {
    let variant = (0u8..6).sample_with(rng);
    match variant {
        0 => Frame::Hello(Hello {
            version: (0u32..16).sample_with(rng),
            stream: string_field().sample_with(rng),
            description: string_field().sample_with(rng),
            level: level_of((0u8..4).sample_with(rng)),
            mem_budget: any::<u64>().sample_with(rng),
            preload: kv_set().sample_with(rng),
        }),
        1 => {
            let mut t = trace().sample_with(rng);
            let kind = (0u8..5).sample_with(rng);
            t.op = op_of(kind, kv_set().sample_with(rng));
            Frame::Trace(TraceFrame {
                seq: any::<u64>().sample_with(rng),
                trace: t,
            })
        }
        2 => Frame::Bye {
            traces_sent: any::<u64>().sample_with(rng),
        },
        3 => Frame::Ack {
            resume_from: any::<u64>().sample_with(rng),
        },
        4 => Frame::Reject {
            reason: reason_of((0u8..5).sample_with(rng)),
            message: string_field().sample_with(rng),
        },
        _ => Frame::Verdict {
            json: string_field().sample_with(rng),
        },
    }
}

#[test]
fn every_frame_round_trips_through_read_frame_and_decoder() {
    let seed = test_seed(0x1EA7_0A2D_417E_0001);
    for case in 0..CASES {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let frame = arbitrary_frame(&mut rng);
        let bytes = frame.to_bytes();

        // Blocking reader path.
        let mut slice = bytes.as_slice();
        let back = read_frame(&mut slice)
            .unwrap_or_else(|e| panic!("seed={seed:#x} case={case}: read_frame failed: {e}"))
            .unwrap_or_else(|| panic!("seed={seed:#x} case={case}: clean EOF instead of frame"));
        assert_eq!(
            back, frame,
            "seed={seed:#x} case={case}: read_frame mismatch"
        );
        assert!(
            read_frame(&mut slice).unwrap().is_none(),
            "seed={seed:#x} case={case}: trailing bytes after frame"
        );

        // Incremental decoder, fed one byte at a time: the frame must
        // appear exactly at the final byte, never earlier.
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.extend(&[*b]);
            let got = dec
                .next_frame()
                .unwrap_or_else(|e| panic!("seed={seed:#x} case={case} byte={i}: {e}"));
            if i + 1 < bytes.len() {
                assert!(
                    got.is_none(),
                    "seed={seed:#x} case={case}: frame complete {} bytes early",
                    bytes.len() - 1 - i
                );
            } else {
                assert_eq!(
                    got.as_ref(),
                    Some(&frame),
                    "seed={seed:#x} case={case}: decoder mismatch"
                );
            }
        }
        dec.finish()
            .unwrap_or_else(|e| panic!("seed={seed:#x} case={case}: finish: {e}"));
    }
}

#[test]
fn truncated_prefixes_are_typed_truncation_errors() {
    let seed = test_seed(0x1EA7_0A2D_417E_0002);
    for case in 0..CASES {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let bytes = arbitrary_frame(&mut rng).to_bytes();
        let cut = (0usize..bytes.len()).sample_with(&mut rng);
        let mut slice = &bytes[..cut];
        let res = read_frame(&mut slice);
        if cut == 0 {
            // EOF at a frame boundary is a clean end of stream.
            assert!(
                matches!(res, Ok(None)),
                "seed={seed:#x} case={case}: empty input must be clean EOF, got {res:?}"
            );
        } else {
            assert!(
                matches!(res, Err(WireError::Truncated)),
                "seed={seed:#x} case={case}: cut at {cut}/{} must be Truncated, got {res:?}",
                bytes.len()
            );
            // The incremental decoder agrees once the input is declared over.
            let mut dec = FrameDecoder::new();
            dec.extend(&bytes[..cut]);
            assert!(
                dec.next_frame().unwrap().is_none(),
                "seed={seed:#x} case={case}: partial frame decoded"
            );
            assert!(
                matches!(dec.finish(), Err(WireError::Truncated)),
                "seed={seed:#x} case={case}: finish on partial frame must be Truncated"
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_yields_the_original_frame() {
    let seed = test_seed(0x1EA7_0A2D_417E_0003);
    for case in 0..CASES {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let frame = arbitrary_frame(&mut rng);
        let mut bytes = frame.to_bytes();
        let pos = (0usize..bytes.len()).sample_with(&mut rng);
        let flip = (1u8..=255).sample_with(&mut rng);
        bytes[pos] ^= flip;

        let mut slice = bytes.as_slice();
        match read_frame(&mut slice) {
            // A typed decode error (Corrupt / Truncated / Oversized /
            // VarintOverflow / Unknown*) is the expected outcome.
            Err(_) => {}
            // A flipped length prefix may reframe the stream into a
            // shorter frame that still checksums — astronomically
            // unlikely — or into a clean-looking EOF; it must never
            // reproduce the original frame from damaged bytes.
            Ok(decoded) => assert_ne!(
                decoded.as_ref(),
                Some(&frame),
                "seed={seed:#x} case={case}: corrupt byte {pos} went unnoticed"
            ),
        }
    }
}

#[test]
fn oversized_length_prefixes_are_refused() {
    let seed = test_seed(0x1EA7_0A2D_417E_0004);
    for case in 0..64 {
        let mut rng = SampleRng::for_case(derive(seed, case));
        let len = (MAX_FRAME_LEN as u64 + 1..u64::MAX / 2).sample_with(&mut rng);
        let mut bytes = Vec::new();
        put_varint(&mut bytes, len);
        bytes.extend_from_slice(&[0u8; 16]); // garbage the reader must not trust
        let mut slice = bytes.as_slice();
        match read_frame(&mut slice) {
            Err(WireError::Oversized { len: got }) => assert_eq!(
                got, len,
                "seed={seed:#x} case={case}: oversized error echoes the wrong length"
            ),
            other => panic!("seed={seed:#x} case={case}: expected Oversized, got {other:?}"),
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(
            matches!(dec.next_frame(), Err(WireError::Oversized { .. })),
            "seed={seed:#x} case={case}: decoder accepted an oversized prefix"
        );
    }
}

#[test]
fn varint_boundaries_round_trip_through_frames() {
    // Every 7-bit group boundary, its neighbours, and the extremes:
    // these exercise 1..10-byte varints including the 10-byte u64::MAX.
    let mut values = vec![0u64, 1, u64::MAX];
    for bits in 1..=9 {
        let b = 7 * bits;
        values.push((1u64 << b) - 1);
        values.push(1u64 << b);
        values.push((1u64 << b) + 1);
    }
    values.push(u64::MAX - 1);
    for v in values {
        for frame in [Frame::Bye { traces_sent: v }, Frame::Ack { resume_from: v }] {
            let bytes = frame.to_bytes();
            let mut slice = bytes.as_slice();
            let back = read_frame(&mut slice)
                .unwrap_or_else(|e| panic!("varint {v}: {e}"))
                .unwrap_or_else(|| panic!("varint {v}: clean EOF"));
            assert_eq!(back, frame, "varint {v} did not round-trip");
        }
    }
}

#[test]
fn hello_version_constant_is_on_the_wire() {
    // A pinned handshake: the version constant must appear in the
    // payload varint so old servers reject new clients deliberately.
    let frame = Frame::Hello(Hello {
        version: WIRE_VERSION,
        stream: "s".to_string(),
        description: String::new(),
        level: IsolationLevel::Serializable,
        mem_budget: 0,
        preload: Vec::new(),
    });
    let bytes = frame.to_bytes();
    let mut slice = bytes.as_slice();
    match read_frame(&mut slice).unwrap().unwrap() {
        Frame::Hello(h) => assert_eq!(h.version, WIRE_VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
}
