//! Property tests for the key-sharded verifier.
//!
//! Two families, both re-seedable through `LEOPARD_TEST_SEED`:
//!
//! 1. **Shard-count invariance** — for randomly generated clean and
//!    chaos-degraded captures at every isolation level, the sharded
//!    verdict (report, statistics, counters, coverage) equals the
//!    sequential one at any shard count, with or without a mid-stream
//!    kill/checkpoint/resume through the [`ShardedCheckpoint`] JSON
//!    envelope.
//! 2. **Exhaustive split points** — for a small capture, killing the
//!    sharded verifier after *every* prefix length at every shard count
//!    and resuming from the serialized envelope yields the uninterrupted
//!    verdict, so no state field can hide from the envelope behind a
//!    lucky split.

use leopard::testseed::{derive, test_seed};
use leopard_core::{ShardedCheckpoint, ShardedVerifier, Trace, Verifier, VerifierConfig};
use leopard_oracle::{
    degrade_capture, generate_clean_capture, Capture, CleanRunSpec, DegradeSpec, Schedule, LEVELS,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// The comparable projection of a verdict (everything except the
/// peak-footprint/budget gauges, which measure engine topology).
fn comparable(o: &leopard_core::VerifyOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{:?}",
        o.report, o.stats, o.counters.traces, o.counters.committed, o.counters.aborted, o.coverage
    )
}

fn capture_for(seed: u64, level_i: usize, degraded: bool) -> (Capture, VerifierConfig) {
    let level = LEVELS[level_i];
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 16,
        clients: 3,
        txns_per_client: 6,
        level,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cap = if degraded {
        degrade_capture(&cap, &DegradeSpec::moderate(seed))
    } else {
        cap
    };
    let mut cfg = VerifierConfig::for_level(level);
    cfg.degraded = degraded;
    (cap, cfg)
}

fn run_sequential(cap: &Capture, cfg: VerifierConfig) -> String {
    let mut v = Verifier::new(cfg);
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    comparable(&v.finish())
}

/// Runs the sharded verifier; with `kill_at = Some(k)` the verifier is
/// imaged and dropped after `k` traces, the envelope round-trips through
/// JSON and a resumed instance finishes the stream.
fn run_sharded(cap: &Capture, cfg: VerifierConfig, n: usize, kill_at: Option<usize>) -> String {
    let mut v = ShardedVerifier::new(cfg, n);
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    let split = kill_at.unwrap_or(0);
    let head: &[Trace] = &cap.traces[..split];
    let tail: &[Trace] = &cap.traces[split..];
    for t in head {
        v.process(t);
    }
    let mut v = if kill_at.is_some() {
        let json = v.checkpoint().to_json();
        drop(v); // the original process dies here
        let ckpt = ShardedCheckpoint::from_json(&json).expect("envelope round-trips");
        ShardedVerifier::resume(&ckpt).expect("resume")
    } else {
        v
    };
    for t in tail {
        v.process(t);
    }
    comparable(&v.finish())
}

proptest! {
    #[test]
    fn sharded_verdict_is_shard_count_invariant(
        case in 0u64..256,
        shards_i in 0usize..3,
        level_i in 0usize..4,
        degraded in any::<bool>(),
    ) {
        let seed = derive(test_seed(0x51AD), case);
        let (cap, cfg) = capture_for(seed, level_i, degraded);
        let n = SHARD_COUNTS[shards_i];
        prop_assert_eq!(
            run_sequential(&cap, cfg),
            run_sharded(&cap, cfg, n, None),
            "seed {:#x} shards {}", seed, n
        );
    }

    #[test]
    fn kill_and_resume_preserves_the_sharded_verdict(
        case in 0u64..256,
        frac_pm in 0u64..=1000,
        shards_i in 0usize..3,
        level_i in 0usize..4,
        degraded in any::<bool>(),
    ) {
        let seed = derive(test_seed(0x0051_ADC4), case);
        let (cap, cfg) = capture_for(seed, level_i, degraded);
        let n = SHARD_COUNTS[shards_i];
        let k = (cap.traces.len() * frac_pm as usize) / 1000;
        prop_assert_eq!(
            run_sequential(&cap, cfg),
            run_sharded(&cap, cfg, n, Some(k)),
            "seed {:#x} shards {} killed after {}", seed, n, k
        );
    }
}

#[test]
fn resume_at_every_split_point_at_every_shard_count() {
    let seed = test_seed(42);
    let spec = CleanRunSpec {
        workload: "blindw-rw".to_string(),
        rows: 8,
        clients: 2,
        txns_per_client: 4,
        level: leopard_core::IsolationLevel::Serializable,
        seed,
        tick: 10,
        schedule: Schedule::Interleaved,
    };
    let cap = generate_clean_capture(&spec).expect("clean capture");
    let cfg = VerifierConfig::for_level(leopard_core::IsolationLevel::Serializable);
    let full = run_sequential(&cap, cfg);
    for n in SHARD_COUNTS {
        for k in 0..=cap.traces.len() {
            assert_eq!(
                full,
                run_sharded(&cap, cfg, n, Some(k)),
                "seed {seed:#x}: {n}-shard verdict diverged when killed after {k} traces"
            );
        }
    }
}
