//! Injector ↔ preflight cross-check: every well-formedness corruption the
//! oracle's injector can produce is flagged by its corresponding preflight
//! diagnostic (H001–H006) at the declared severity, while the anomaly
//! gadgets — which are semantically wrong but syntactically well-formed —
//! sail through preflight without errors. This pins the division of labour
//! between the two analysis layers.

use leopard_core::{PreflightAnalyzer, PreflightConfig};
use leopard_oracle::{
    generate_clean_capture, AnomalyClass, Capture, CleanRunSpec, CorruptionKind, Mutation,
};

fn preflight(cap: &Capture) -> leopard_core::PreflightReport {
    PreflightAnalyzer::analyze(
        PreflightConfig::default(),
        cap.header.preload.iter().copied(),
        cap.traces.iter(),
    )
}

fn clean_base() -> Capture {
    generate_clean_capture(&CleanRunSpec::corpus_default()).expect("clean base capture")
}

#[test]
fn every_corruption_raises_its_diagnostic_at_declared_severity() {
    let base = clean_base();
    assert!(
        !preflight(&base).has_errors(),
        "base capture must be preflight-clean before mutation"
    );
    for kind in CorruptionKind::ALL {
        let mutation = Mutation::corruption(kind);
        let mutated = mutation.apply(&base);
        let report = preflight(&mutated);
        let diag = report
            .with_code(kind.diag_code())
            .next()
            .unwrap_or_else(|| {
                panic!(
                    "{} did not raise {} (report: {} errors / {} warnings)",
                    mutation.name,
                    kind.diag_code(),
                    report.error_count(),
                    report.warning_count()
                )
            });
        assert_eq!(
            diag.severity,
            kind.severity(),
            "{} raised {} at the wrong severity",
            mutation.name,
            kind.diag_code()
        );
    }
}

#[test]
fn corruption_kinds_cover_the_whole_diagnostic_range() {
    let mut codes: Vec<String> = CorruptionKind::ALL
        .iter()
        .map(|k| k.diag_code().to_string())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(
        codes,
        ["H001", "H002", "H003", "H004", "H005", "H006"],
        "injector corruptions must map one-to-one onto the preflight codes"
    );
}

#[test]
fn anomaly_gadgets_are_well_formed() {
    let base = clean_base();
    for class in AnomalyClass::ALL {
        let mutated = Mutation::anomaly(class).apply(&base);
        let report = preflight(&mutated);
        assert!(
            !report.has_errors(),
            "{} gadget is syntactically malformed ({} preflight errors) — \
             it would be rejected before the verifier ever saw the anomaly",
            class.name(),
            report.error_count()
        );
    }
}
