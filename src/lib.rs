//! Facade crate; see crates/*.
pub use leopard_core::*;
