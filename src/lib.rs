//! Facade crate; see crates/*.
pub use leopard_core::*;

pub mod testseed;
