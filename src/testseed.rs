//! Single source of RNG seeds for the workspace's randomised tests.
//!
//! Every seeded test derives its base seed through [`test_seed`], so one
//! environment variable — `LEOPARD_TEST_SEED` — re-seeds the whole suite
//! for exploratory fuzzing, while the committed defaults keep CI
//! deterministic. Tests echo the effective seed in their assertion
//! messages; a failure under an override reproduces with
//! `LEOPARD_TEST_SEED=<seed> cargo test <name>`.

/// Environment variable that overrides every test's base RNG seed.
pub const SEED_ENV: &str = "LEOPARD_TEST_SEED";

/// The effective base seed for a test: `LEOPARD_TEST_SEED` (decimal or
/// `0x`-prefixed hex) when set, otherwise `default`.
///
/// # Panics
///
/// Panics when the environment variable is set but does not parse as a
/// `u64` — a silent fallback would make an override look effective while
/// the default still ran.
#[must_use]
pub fn test_seed(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(raw) => parse_seed(&raw)
            .unwrap_or_else(|| panic!("{SEED_ENV}={raw:?} is not a u64 (decimal or 0x-hex)")),
        Err(_) => default,
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Derives the sub-seed for iteration `index` of a test from its base
/// seed (one splitmix64 step), so per-case RNG streams are decorrelated
/// while every one of them remains reproducible from the single base.
#[must_use]
pub fn derive(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 0xC0FFEE "), Some(0xC0_FFEE));
        assert_eq!(parse_seed("0XFF"), Some(0xFF));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed("-3"), None);
    }

    #[test]
    fn derive_is_deterministic_and_spreads_indices() {
        assert_eq!(derive(7, 3), derive(7, 3));
        let subs: Vec<u64> = (0..64).map(|i| derive(0xC0_FFEE, i)).collect();
        let mut unique = subs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), subs.len(), "derived sub-seeds collided");
    }
}
