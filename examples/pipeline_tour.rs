//! Pipeline tour: the live Fig. 2 wiring — client threads stream traces
//! through channels into the two-level pipeline while the verifier
//! consumes the sorted output online.
//!
//! ```text
//! cargo run --example pipeline_tour
//! ```

use leopard::{IsolationLevel, PipelineConfig, Verifier, VerifierConfig};
use leopard_core::pipeline::ChannelTracer;
use leopard_core::ClientId;
use leopard_db::{Database, DbConfig, TracedSession, WallClock};
use leopard_workloads::{
    execute_txn, preload_database, BlindW, BlindWVariant, UniqueValues, WorkloadGen,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

const CLIENTS: usize = 6;
const TXNS_PER_CLIENT: u64 = 400;

fn main() {
    let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
    let workload = BlindW::new(BlindWVariant::ReadWriteRange).with_table_size(512);
    let preload = preload_database(&db, &workload);

    // The tracer side: one channel-backed local buffer per client.
    let (mut tracer, handles) = ChannelTracer::new(CLIENTS, PipelineConfig::default());
    let clock = Arc::new(WallClock::new());
    let unique = UniqueValues::new();

    // Client threads run the workload; each drops its handle when done,
    // closing its trace stream.
    let mut joins = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let db = Arc::clone(&db);
        let clock = Arc::clone(&clock);
        let mut gen = workload.clone();
        let unique = unique.clone();
        joins.push(std::thread::spawn(move || {
            let mut session = TracedSession::new(db.session(), clock, ClientId(i as u32), handle);
            let mut rng = SmallRng::seed_from_u64(1000 + i as u64);
            let mut committed = 0u64;
            for _ in 0..TXNS_PER_CLIENT {
                let steps = gen.next_txn(&mut rng);
                if execute_txn(&mut session, &steps, &unique).is_ok() {
                    committed += 1;
                }
            }
            committed
        }));
    }

    // The verifier consumes the sorted stream *while the workload runs*.
    let mut verifier = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
    for (k, v) in preload {
        verifier.preload(k, v);
    }
    let mut batch = Vec::new();
    let mut verified = 0u64;
    loop {
        let live = tracer.poll(&mut batch);
        for trace in batch.drain(..) {
            verifier.process(&trace);
            verified += 1;
        }
        if !live {
            break;
        }
        std::thread::yield_now();
    }
    let committed: u64 = joins.into_iter().map(|j| j.join().expect("client")).sum();
    let stats = tracer.stats();
    let outcome = verifier.finish();

    println!("clients committed {committed} transactions");
    println!(
        "pipeline dispatched {} traces in {} rounds, peak global buffer {}",
        stats.dispatched, stats.rounds, stats.max_global
    );
    println!("verifier saw {verified} traces online; {}", outcome.stats);
    assert_eq!(outcome.counters.committed, committed);
    if outcome.report.is_clean() {
        println!("online verification kept up: no violations");
    } else {
        println!("{}", outcome.report);
        std::process::exit(1);
    }
}
