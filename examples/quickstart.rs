//! Quickstart: verify a small concurrent workload end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Spins up the in-memory DBMS substrate at SERIALIZABLE, runs a few
//! client threads of a bank-transfer workload, pipes the interval-based
//! traces through the two-level pipeline, and verifies all four
//! isolation mechanisms.

use leopard::{IsolationLevel, PipelineConfig, TwoLevelPipeline, Verifier, VerifierConfig};
use leopard_db::{Database, DbConfig};
use leopard_workloads::{preload_database, run_collect, RunLimit, SmallBank, WorkloadGen};

fn main() {
    // 1. A database under test: the bundled engine at SERIALIZABLE.
    let db = Database::new(DbConfig::at(IsolationLevel::Serializable));

    // 2. A workload: SmallBank over 100 accounts, 4 client threads.
    let workload = SmallBank::new(100);
    let initial_state = preload_database(&db, &workload);
    let clients: Vec<Box<dyn WorkloadGen>> =
        (0..4).map(|_| Box::new(workload.clone()) as _).collect();

    // 3. Run it. The traced sessions record {ts_bef, ts_aft, op} around
    //    every operation — that is ALL Leopard ever sees.
    let run = run_collect(&db, clients, RunLimit::Txns(500), 42);
    println!(
        "ran {} transactions ({} aborted) in {:?}",
        run.stats.committed, run.stats.aborted, run.stats.wall
    );

    // 4. Sort the per-client streams online with the two-level pipeline.
    let mut pipeline = TwoLevelPipeline::new(run.per_client.len(), PipelineConfig::default());
    let mut verifier = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
    for (key, value) in initial_state {
        verifier.preload(key, value);
    }
    let mut sorted = Vec::new();
    for (i, stream) in run.per_client.iter().enumerate() {
        for trace in stream {
            pipeline
                .push(i, trace.clone())
                .expect("per-client monotone");
        }
        pipeline.close(i).expect("valid client");
    }
    pipeline.drain_available(&mut sorted);

    // 5. Mechanism-mirrored verification: CR + ME + FUW + SC.
    for trace in &sorted {
        verifier.process(trace);
    }
    let outcome = verifier.finish();

    println!(
        "verified {} traces, {} committed transactions",
        outcome.counters.traces, outcome.counters.committed
    );
    println!("dependency stats: {}", outcome.stats);
    if outcome.report.is_clean() {
        println!("verdict: no isolation violations — the engine upheld SERIALIZABLE");
    } else {
        println!("verdict: VIOLATIONS FOUND\n{}", outcome.report);
        std::process::exit(1);
    }
}
