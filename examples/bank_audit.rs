//! Offline audit: verify a *trace file* — no database required.
//!
//! ```text
//! cargo run --example bank_audit
//! ```
//!
//! Leopard is black-box: anything that can produce interval-based traces
//! can be audited. This example writes a captured trace log to JSON
//! (the shape a client-side interceptor would produce for a real DBMS),
//! reads it back, and audits it twice — once as a clean history, once
//! after tampering with one read to simulate a corrupted snapshot.

use leopard::{IsolationLevel, Key, OpKind, Trace, Value, Verifier, VerifierConfig};
use leopard_db::{Database, DbConfig};
use leopard_workloads::{preload_database, run_collect, RunLimit, SmallBank, WorkloadGen};

fn audit(traces: &[Trace], preload: &[(Key, Value)], label: &str) -> bool {
    let mut verifier = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
    for &(k, v) in preload {
        verifier.preload(k, v);
    }
    for t in traces {
        verifier.process(t);
    }
    let outcome = verifier.finish();
    println!(
        "[{label}] {} traces, {} txns: {}",
        outcome.counters.traces,
        outcome.counters.committed,
        if outcome.report.is_clean() {
            "clean".to_string()
        } else {
            format!("{}", outcome.report)
        }
    );
    outcome.report.is_clean()
}

fn main() {
    // Capture a real run into a trace log.
    let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
    let workload = SmallBank::new(64);
    let preload = preload_database(&db, &workload);
    let clients: Vec<Box<dyn WorkloadGen>> =
        (0..4).map(|_| Box::new(workload.clone()) as _).collect();
    let run = run_collect(&db, clients, RunLimit::Txns(200), 3);
    let traces = run.merged_sorted();

    // Persist and reload: the audit input is just data.
    let path = std::env::temp_dir().join("leopard_bank_audit.json");
    let json = serde_json::to_string(&traces).expect("traces serialize");
    std::fs::write(&path, &json).expect("write trace file");
    println!(
        "captured {} traces to {} ({} bytes)",
        traces.len(),
        path.display(),
        json.len()
    );
    let mut replay: Vec<Trace> =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read")).expect("parse");

    // A clean history audits clean.
    assert!(audit(&replay, &preload, "original"));

    // Tamper with the log: flip the value of the first external read, as
    // a corrupted snapshot would. The audit must flag it.
    let victim = replay
        .iter_mut()
        .find_map(|t| match &mut t.op {
            OpKind::Read(set) if !set.is_empty() => Some(&mut set[0].1),
            _ => None,
        })
        .expect("history contains a read");
    *victim = Value(victim.0 ^ 0xDEAD_BEEF);
    let clean = audit(&replay, &preload, "tampered");
    assert!(!clean, "tampered history must not audit clean");
    println!("tampering detected — audit works on trace files alone.");
}
