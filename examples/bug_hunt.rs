//! Bug hunt: inject every fault the engine knows and watch Leopard catch
//! each one — while a cycle-only checker stays blind to most.
//!
//! ```text
//! cargo run --example bug_hunt
//! ```
//!
//! This is the §VI-F exercise in miniature: each fault disables one
//! isolation mechanism inside the engine; Leopard's mechanism-mirrored
//! verification flags exactly that mechanism.

use leopard::{IsolationLevel, Mechanism, Verifier, VerifierConfig};
use leopard_db::{Database, DbConfig, FaultKind, FaultPlan};
use leopard_workloads::{preload_database, run_collect, RunLimit, SmallBank, WorkloadGen};
use std::time::Duration;

fn hunt(fault: FaultKind, level: IsolationLevel, expect: Mechanism, p: f64) -> (usize, bool) {
    // A faulty database: the fault fires with probability `p` per
    // opportunity, so the bug hides inside mostly-correct behaviour.
    let db = Database::with_faults(
        DbConfig {
            op_latency: Duration::from_micros(20),
            ..DbConfig::at(level)
        },
        FaultPlan::with_probability(fault, p, 7),
    );
    let workload = SmallBank::new(32);
    let preload = preload_database(&db, &workload);
    let clients: Vec<Box<dyn WorkloadGen>> =
        (0..8).map(|_| Box::new(workload.clone()) as _).collect();
    let run = run_collect(&db, clients, RunLimit::Txns(800), 99);

    let mut verifier = Verifier::new(VerifierConfig::for_level(level));
    for (k, v) in preload {
        verifier.preload(k, v);
    }
    for t in run.merged_sorted() {
        verifier.process(&t);
    }
    let outcome = verifier.finish();
    let caught = outcome.report.count(expect) > 0;
    (outcome.report.violations.len(), caught)
}

fn main() {
    println!("fault injection sweep: SmallBank, 8 clients, low fault probabilities\n");
    println!(
        "{:<24} {:<14} {:<22} {:>10}",
        "fault", "level", "expected mechanism", "verdict"
    );
    let cases = [
        (
            FaultKind::DirtyRead,
            IsolationLevel::ReadCommitted,
            Mechanism::ConsistentRead,
            0.02,
        ),
        (
            FaultKind::StaleSnapshot,
            IsolationLevel::ReadCommitted,
            Mechanism::ConsistentRead,
            0.02,
        ),
        (
            FaultKind::SkipLock,
            IsolationLevel::RepeatableRead,
            Mechanism::MutualExclusion,
            0.20,
        ),
        (
            FaultKind::AllowLostUpdate,
            IsolationLevel::SnapshotIsolation,
            Mechanism::FirstUpdaterWins,
            0.05,
        ),
        (
            FaultKind::SkipCertifier,
            IsolationLevel::Serializable,
            Mechanism::SerializationCertifier,
            0.50,
        ),
    ];
    let mut all_caught = true;
    for (fault, level, expect, p) in cases {
        let (violations, caught) = hunt(fault, level, expect, p);
        println!(
            "{:<24} {:<14} {:<22} {:>10}",
            format!("{fault:?}"),
            level.to_string(),
            format!("{expect}"),
            if caught {
                format!("CAUGHT ({violations})")
            } else {
                "missed".to_string()
            }
        );
        all_caught &= caught;
    }
    if !all_caught {
        println!("\nsome faults escaped — check fault probabilities/workload contention");
        std::process::exit(1);
    }
    println!("\nevery injected mechanism violation was detected.");
}
